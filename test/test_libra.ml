(* Tests for the Libra core: utility function (including the
   Theorem 4.1 properties), the three-stage controller, telemetry and
   the ideal combiner. *)

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Utility: Eq. 1 *)

let test_utility_rewards_throughput () =
  let u = Libra.Utility.eval_raw Libra.Utility.default ~rtt_gradient:0.0 ~loss_rate:0.0 in
  check_bool "monotone in x when clean" true (u ~rate_mbps:20.0 > u ~rate_mbps:10.0)

let test_utility_penalises_gradient_and_loss () =
  let base =
    Libra.Utility.eval_raw Libra.Utility.default ~rate_mbps:20.0 ~rtt_gradient:0.0
      ~loss_rate:0.0
  in
  let grad =
    Libra.Utility.eval_raw Libra.Utility.default ~rate_mbps:20.0 ~rtt_gradient:0.05
      ~loss_rate:0.0
  in
  let loss =
    Libra.Utility.eval_raw Libra.Utility.default ~rate_mbps:20.0 ~rtt_gradient:0.0
      ~loss_rate:0.05
  in
  check_bool "gradient penalised" true (grad < base);
  check_bool "loss penalised" true (loss < base)

let test_utility_ignores_negative_gradient () =
  let a =
    Libra.Utility.eval_raw Libra.Utility.default ~rate_mbps:20.0 ~rtt_gradient:(-0.5)
      ~loss_rate:0.0
  in
  let b =
    Libra.Utility.eval_raw Libra.Utility.default ~rate_mbps:20.0 ~rtt_gradient:0.0
      ~loss_rate:0.0
  in
  Alcotest.(check (float 1e-9)) "max(0, grad)" b a

(* Concavity in x_i (Lemma A.2 part 1): second difference negative. *)
let prop_utility_concave_in_rate =
  QCheck.Test.make ~name:"fluid utility concave in own rate" ~count:200
    QCheck.(triple (float_range 1.0 50.0) (float_range 0.0 100.0) (float_range 10.0 100.0))
    (fun (x, others, capacity) ->
      let u v = Libra.Utility.fluid Libra.Utility.default ~x:v ~others ~capacity in
      let h = 0.5 in
      let second = u (x +. h) +. u (x -. h) -. (2.0 *. u x) in
      second < 1e-6)

(* The symmetric profile beats unilateral deviations (Theorem 4.1). *)
let prop_fair_share_is_equilibrium =
  QCheck.Test.make ~name:"no profitable unilateral deviation at fair share" ~count:100
    QCheck.(pair (int_range 2 6) (float_range 20.0 100.0))
    (fun (n, capacity) ->
      (* Find the symmetric equilibrium x* by scanning: each sender at
         x, utility of one sender deviating to v. *)
      let best_symmetric =
        let best = ref (0.0, neg_infinity) in
        for i = 1 to 400 do
          let x = capacity *. float_of_int i /. (200.0 *. float_of_int n) in
          let u =
            Libra.Utility.fluid Libra.Utility.default ~x
              ~others:(float_of_int (n - 1) *. x)
              ~capacity
          in
          if u > snd !best then best := (x, u)
        done;
        fst !best
      in
      let x = best_symmetric in
      let others = float_of_int (n - 1) *. x in
      let u_star = Libra.Utility.fluid Libra.Utility.default ~x ~others ~capacity in
      (* No deviation on a coarse grid improves on x*. *)
      let ok = ref true in
      for i = 1 to 100 do
        let v = capacity *. float_of_int i /. 50.0 /. float_of_int n in
        if Float.abs (v -. x) > 1e-9 then begin
          let u_dev = Libra.Utility.fluid Libra.Utility.default ~x:v ~others ~capacity in
          if u_dev > u_star +. 1e-6 then ok := false
        end
      done;
      !ok)

let test_presets_order_throughput_weight () =
  let alpha p = p.Libra.Utility.alpha in
  check_bool "Th-2 > Th-1 > default" true
    (alpha Libra.Utility.throughput_2 > alpha Libra.Utility.throughput_1
    && alpha Libra.Utility.throughput_1 > alpha Libra.Utility.default);
  let beta p = p.Libra.Utility.beta in
  check_bool "La-2 > La-1 > default" true
    (beta Libra.Utility.latency_2 > beta Libra.Utility.latency_1
    && beta Libra.Utility.latency_1 > beta Libra.Utility.default)

(* ------------------------------------------------------------------ *)
(* Controller state machine *)

let mk_controller ?(params = Libra.Params.default) ?classic () =
  let classic =
    match classic with Some c -> c | None -> Some (Classic_cc.Cubic.embedded ())
  in
  let policy = (Rlcc.Pretrained.libra_policy ()).Rlcc.Train.policy in
  Libra.Controller.create ~initial_rate:1e6 ~params ~classic
    ~policy ~state_set:Rlcc.Features.libra ()

let ack ~now ~seq ?(rtt = 0.05) () =
  {
    Netsim.Cca.now;
    seq;
    rtt;
    acked_bytes = 1500;
    inflight = 10;
    delivered_bytes = 1500 * seq;
    rate_sample = 2e6;
    newly_lost = 0;
  }

let send ~now ~seq =
  { Netsim.Cca.now; seq; size = 1500; inflight = 10 }

let test_controller_starts_in_exploration () =
  let c = mk_controller () in
  Libra.Controller.on_ack c (ack ~now:0.05 ~seq:0 ());
  check_bool "exploration" true (Libra.Controller.stage c = Libra.Controller.Exploration)

let test_controller_cycles_through_stages () =
  let c = mk_controller () in
  (* Drive with a regular ack clock; the stage must visit all four
     stages and come back to exploration. *)
  let seen = Hashtbl.create 4 in
  let seq = ref 0 in
  let now = ref 0.0 in
  for _ = 1 to 2000 do
    incr seq;
    now := !now +. 0.004;
    Libra.Controller.on_send c (send ~now:!now ~seq:!seq);
    Libra.Controller.on_ack c (ack ~now:!now ~seq:(max 0 (!seq - 12)) ());
    Hashtbl.replace seen (Libra.Controller.stage c) ()
  done;
  check_bool "all stages visited" true (Hashtbl.length seen = 4);
  check_bool "made decisions" true
    (Libra.Telemetry.total (Libra.Controller.telemetry c) > 0)

let test_controller_decision_is_argmax () =
  let c = mk_controller () in
  let seq = ref 0 and now = ref 0.0 in
  for _ = 1 to 4000 do
    incr seq;
    now := !now +. 0.003;
    Libra.Controller.on_send c (send ~now:!now ~seq:!seq);
    Libra.Controller.on_ack c (ack ~now:!now ~seq:(max 0 (!seq - 12)) ())
  done;
  let cycles = Libra.Telemetry.cycles (Libra.Controller.telemetry c) in
  check_bool "has cycles" true (cycles <> []);
  List.iter
    (fun cy ->
      let u_chosen =
        match cy.Libra.Telemetry.chosen with
        | Libra.Telemetry.Prev -> cy.Libra.Telemetry.u_prev
        | Libra.Telemetry.Rl -> cy.Libra.Telemetry.u_rl
        | Libra.Telemetry.Cl -> cy.Libra.Telemetry.u_cl
      in
      check_bool "chosen has max utility" true
        (u_chosen >= cy.Libra.Telemetry.u_prev -. 1e9 *. epsilon_float
        && u_chosen >= cy.Libra.Telemetry.u_rl
        && u_chosen >= cy.Libra.Telemetry.u_cl))
    cycles

let test_controller_timeout_halves_base () =
  let c = mk_controller () in
  Libra.Controller.on_ack c (ack ~now:0.05 ~seq:0 ());
  let before = Libra.Controller.base_rate c in
  (* One timeout keeps the base rate (the paper's no-ACK rule: a single
     tail-loss RTO is routine on lossy paths)... *)
  Libra.Controller.on_loss c
    { Netsim.Cca.now = 0.5; lost = 10; kind = Netsim.Cca.Timeout; inflight = 0 };
  Alcotest.(check (float 1.0)) "kept after one timeout" before
    (Libra.Controller.base_rate c);
  (* ...consecutive timeouts (collapsed path) halve it. *)
  Libra.Controller.on_loss c
    { Netsim.Cca.now = 1.0; lost = 10; kind = Netsim.Cca.Timeout; inflight = 0 };
  Alcotest.(check (float 1.0)) "halved after two" (before /. 2.0)
    (Libra.Controller.base_rate c)

(* Watchdog: a diverged DRL agent (non-finite rate) must be quarantined
   — the poisoned rate is never applied, the cycle falls back to the
   classic arm, and the fallback is visible in the counter and as a
   harness trace event. The controller itself keeps cycling. *)
let test_controller_watchdog_quarantines_nan_rl () =
  let c = mk_controller () in
  let tracer = Obs.Trace.create () in
  Obs.Trace.run tracer ~lane:0 (fun () ->
      let seq = ref 0 and now = ref 0.0 in
      for _ = 1 to 2000 do
        incr seq;
        now := !now +. 0.004;
        Libra.Controller.on_send c (send ~now:!now ~seq:!seq);
        Libra.Controller.on_ack c (ack ~now:!now ~seq:(max 0 (!seq - 12)) ());
        (* The controller re-imposes the base rate on the agent at each
           exploration entry, so keep re-poisoning while exploring —
           as a policy whose every decision diverges would. *)
        if Libra.Controller.stage c = Libra.Controller.Exploration then
          Rlcc.Agent.set_rate (Libra.Controller.agent c) Float.nan
      done);
  check_bool "watchdog fired" true (Libra.Controller.rl_fallbacks c > 0);
  check_bool "base rate never poisoned" true
    (Float.is_finite (Libra.Controller.base_rate c)
    && Libra.Controller.base_rate c > 0.0);
  let cycles = Libra.Telemetry.cycles (Libra.Controller.telemetry c) in
  check_bool "controller kept cycling" true (cycles <> []);
  (* Quarantined cycles score the RL arm at -inf; none of them may have
     adopted it. *)
  check_bool "quarantined cycles avoid the RL arm" true
    (List.for_all
       (fun cy ->
         cy.Libra.Telemetry.u_rl > neg_infinity
         || cy.Libra.Telemetry.chosen <> Libra.Telemetry.Rl)
       cycles);
  check_bool "at least one quarantined cycle" true
    (List.exists (fun cy -> cy.Libra.Telemetry.u_rl = neg_infinity) cycles);
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "fallback harness event traced" true
    (contains "\"fallback\"" (Obs.Trace.to_jsonl tracer))

(* End-to-end: C-Libra on the simulator beats CUBIC on delay while
   keeping most of the utilization (the Fig. 7 story). *)
let run_cca cca =
  let link =
    { Netsim.Network.rate_fn = (fun _ -> Netsim.Units.mbps_to_bps 24.0); const_rate = None;
      grain = 0.02; buffer_bytes = Netsim.Units.kb 150; loss_p = 0.0 ; aqm = `Fifo}
  in
  let flows = [ { Netsim.Network.cca; start_at = 0.0; stop_at = 15.0; rtt = 0.03 } ] in
  let s = Netsim.Network.run ~link ~flows ~duration:15.0 () in
  match s.Netsim.Network.flows with
  | [ f ] -> (Netsim.Network.utilization s, Netsim.Flow_stats.mean_rtt f.Netsim.Network.stats)
  | _ -> Alcotest.fail "one flow"

let test_c_libra_pareto_vs_cubic () =
  let u_libra, d_libra = run_cca (Libra.make_c_libra ()) in
  let u_cubic, d_cubic = run_cca (Classic_cc.Cubic.make ()) in
  check_bool
    (Printf.sprintf "libra util %.2f (cubic %.2f)" u_libra u_cubic)
    true (u_libra > 0.75);
  check_bool
    (Printf.sprintf "libra delay %.0fms << cubic %.0fms" (1000. *. d_libra) (1000. *. d_cubic))
    true
    (d_libra < 0.75 *. d_cubic)

let test_preference_presets_change_behaviour () =
  let u_th, _ = run_cca (Libra.with_preference ~preset:"Th-2" Libra.make_c_libra) in
  let _, d_la = run_cca (Libra.with_preference ~preset:"La-2" Libra.make_c_libra) in
  check_bool "throughput preset utilises well" true (u_th > 0.8);
  check_bool "latency preset keeps delay low" true (d_la < 0.045)

let test_unknown_preset_rejected () =
  Alcotest.check_raises "invalid preset"
    (Invalid_argument "Libra.with_preference: unknown preset Zz") (fun () ->
      ignore (Libra.with_preference ~preset:"Zz" Libra.make_c_libra))

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let test_telemetry_fractions_sum_to_one () =
  let t = Libra.Telemetry.create () in
  let record chosen =
    Libra.Telemetry.record t
      { Libra.Telemetry.at = 0.0; chosen; u_prev = 0.0; u_rl = 0.0; u_cl = 0.0; x_next = 1e6 }
  in
  record Libra.Telemetry.Prev;
  record Libra.Telemetry.Rl;
  record Libra.Telemetry.Rl;
  record Libra.Telemetry.Cl;
  let p, r, c = Libra.Telemetry.fractions t in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (p +. r +. c);
  Alcotest.(check (float 1e-9)) "rl fraction" 0.5 r

(* Edge cases: a telemetry with no recorded cycles (and one with only
   skips) reports all-zero fractions and an empty utility series, not
   nan or a crash. *)
let test_telemetry_empty () =
  let t = Libra.Telemetry.create () in
  let p, r, c = Libra.Telemetry.fractions t in
  Alcotest.(check (float 1e-9)) "prev 0" 0.0 p;
  Alcotest.(check (float 1e-9)) "rl 0" 0.0 r;
  Alcotest.(check (float 1e-9)) "cl 0" 0.0 c;
  Alcotest.(check int) "no series" 0
    (List.length (Libra.Telemetry.utility_series t));
  Alcotest.(check int) "no cycles" 0 (Libra.Telemetry.total t)

let test_telemetry_skip_only () =
  let t = Libra.Telemetry.create () in
  for _ = 1 to 5 do
    Libra.Telemetry.record_skip t
  done;
  let p, r, c = Libra.Telemetry.fractions t in
  Alcotest.(check (float 1e-9)) "all zero" 0.0 (p +. r +. c);
  Alcotest.(check int) "skips don't count as cycles" 0 (Libra.Telemetry.total t);
  Alcotest.(check int) "no series" 0
    (List.length (Libra.Telemetry.utility_series t))

(* Property: whenever at least one cycle is recorded, the three
   fractions sum to exactly 1.0 (counts partition the cycle list), and
   the utility series picks the chosen candidate's utility pointwise. *)
let prop_telemetry_fractions_partition =
  QCheck.Test.make ~name:"fractions sum to 1 when total > 0" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (int_bound 2))
    (fun choices ->
      let t = Libra.Telemetry.create () in
      List.iteri
        (fun i k ->
          let chosen =
            match k with
            | 0 -> Libra.Telemetry.Prev
            | 1 -> Libra.Telemetry.Rl
            | _ -> Libra.Telemetry.Cl
          in
          Libra.Telemetry.record t
            {
              Libra.Telemetry.at = float_of_int i;
              chosen;
              u_prev = 1.0;
              u_rl = 2.0;
              u_cl = 3.0;
              x_next = 1e6;
            })
        choices;
      let p, r, c = Libra.Telemetry.fractions t in
      let sums_to_one = Float.abs (p +. r +. c -. 1.0) < 1e-9 in
      let series = Libra.Telemetry.utility_series t in
      let series_tracks_choice =
        List.length series = List.length choices
        && List.for_all2 (fun k (_, u) -> u = float_of_int (k + 1)) choices series
      in
      sums_to_one && series_tracks_choice)

(* ------------------------------------------------------------------ *)
(* Ideal combiner *)

let test_ideal_combine_is_pointwise_max () =
  let a = [| (0.0, 1.0); (1.0, 3.0) |] and b = [| (0.0, 2.0); (1.0, 2.0) |] in
  let c = Libra.Ideal.combine a b in
  Alcotest.(check (float 1e-9)) "max at 0" 2.0 (snd c.(0));
  Alcotest.(check (float 1e-9)) "max at 1" 3.0 (snd c.(1))

let test_ideal_normalise_range () =
  let s = Libra.Ideal.normalise [| (0.0, 5.0); (1.0, 10.0); (2.0, 7.5) |] in
  Alcotest.(check (float 1e-9)) "min 0" 0.0 (snd s.(0));
  Alcotest.(check (float 1e-9)) "max 1" 1.0 (snd s.(1));
  Alcotest.(check (float 1e-9)) "mid 0.5" 0.5 (snd s.(2))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run ~and_exit:false "libra"
    [
      ( "utility",
        [
          Alcotest.test_case "rewards throughput" `Quick test_utility_rewards_throughput;
          Alcotest.test_case "penalties" `Quick test_utility_penalises_gradient_and_loss;
          Alcotest.test_case "negative gradient" `Quick test_utility_ignores_negative_gradient;
          Alcotest.test_case "preset ordering" `Quick test_presets_order_throughput_weight;
        ]
        @ qsuite [ prop_utility_concave_in_rate; prop_fair_share_is_equilibrium ] );
      ( "controller",
        [
          Alcotest.test_case "starts exploring" `Slow test_controller_starts_in_exploration;
          Alcotest.test_case "cycles stages" `Slow test_controller_cycles_through_stages;
          Alcotest.test_case "argmax decision" `Slow test_controller_decision_is_argmax;
          Alcotest.test_case "timeout halves" `Slow test_controller_timeout_halves_base;
          Alcotest.test_case "watchdog quarantine" `Slow
            test_controller_watchdog_quarantines_nan_rl;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "pareto vs cubic" `Slow test_c_libra_pareto_vs_cubic;
          Alcotest.test_case "preference presets" `Slow test_preference_presets_change_behaviour;
          Alcotest.test_case "unknown preset" `Slow test_unknown_preset_rejected;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "fractions" `Quick test_telemetry_fractions_sum_to_one;
          Alcotest.test_case "empty" `Quick test_telemetry_empty;
          Alcotest.test_case "skip-only" `Quick test_telemetry_skip_only;
        ]
        @ qsuite [ prop_telemetry_fractions_partition ] );
      ( "ideal",
        [
          Alcotest.test_case "pointwise max" `Quick test_ideal_combine_is_pointwise_max;
          Alcotest.test_case "normalise" `Quick test_ideal_normalise_range;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* De-biasing helpers (DESIGN.md 4b) *)

let snap ?(acked = 10) ?(lost = 0) ?(grad = 0.0) ?(se = 0.001) ?(avg_rtt = 0.05)
    ?(min_rtt = 0.05) () =
  {
    Netsim.Monitor.duration = 0.05;
    throughput = 1e6;
    avg_rtt;
    min_rtt;
    rtt_gradient = grad;
    rtt_grad_se = se;
    loss_rate = 0.0;
    acked;
    lost_pkts = lost;
  }

let test_shrunk_loss_dampens_small_windows () =
  (* 1 loss among 4 packets reads as 1/9, not 25%. *)
  Alcotest.(check (float 1e-9)) "shrinkage" (1.0 /. 9.0)
    (Libra.Controller.shrunk_loss (snap ~acked:4 ~lost:1 ()));
  (* Large windows converge to the raw rate. *)
  let big = Libra.Controller.shrunk_loss (snap ~acked:360 ~lost:40 ()) in
  check_bool "converges to 10%" true (Float.abs (big -. 0.099) < 0.002)

let test_queue_free_fraction_gates () =
  Alcotest.(check (float 1e-9)) "empty queue: full discount" 1.0
    (Libra.Controller.queue_free_fraction (snap ~avg_rtt:0.05 ~min_rtt:0.05 ()));
  Alcotest.(check (float 1e-9)) "deep queue: no discount" 0.0
    (Libra.Controller.queue_free_fraction (snap ~avg_rtt:0.10 ~min_rtt:0.05 ()));
  let mid = Libra.Controller.queue_free_fraction (snap ~avg_rtt:0.0675 ~min_rtt:0.05 ()) in
  check_bool "fades in between" true (mid > 0.0 && mid < 1.0)

let test_excess_grad_significance_filter () =
  (* A slope within 2 SE of zero (after detrending) scores zero. *)
  Alcotest.(check (float 1e-9)) "insignificant -> 0" 0.0
    (Libra.Controller.excess_grad ~common:0.0 (snap ~grad:0.001 ~se:0.001 ()));
  (* A strong slope survives, signed. *)
  let g = Libra.Controller.excess_grad ~common:0.0 (snap ~grad:0.05 ~se:0.001 ()) in
  Alcotest.(check (float 1e-9)) "significant passes" 0.05 g;
  (* Common-mode is removed before the test. *)
  Alcotest.(check (float 1e-9)) "detrended" 0.0
    (Libra.Controller.excess_grad ~common:0.05 (snap ~grad:0.0505 ~se:0.001 ()))

let prop_excess_grad_antisymmetric_noise =
  QCheck.Test.make ~name:"excess grad symmetric around common" ~count:200
    QCheck.(pair (float_range (-0.1) 0.1) (float_range 0.0 0.05))
    (fun (delta, common) ->
      let up = Libra.Controller.excess_grad ~common (snap ~grad:(common +. delta) ~se:1e-6 ()) in
      let down = Libra.Controller.excess_grad ~common (snap ~grad:(common -. delta) ~se:1e-6 ()) in
      Float.abs (up +. down) < 1e-9)

let () =
  Alcotest.run ~and_exit:false "libra-debias"
    [
      ( "debias",
        [
          Alcotest.test_case "shrunk loss" `Quick test_shrunk_loss_dampens_small_windows;
          Alcotest.test_case "queue gate" `Quick test_queue_free_fraction_gates;
          Alcotest.test_case "grad significance" `Quick test_excess_grad_significance_filter;
        ]
        @ qsuite [ prop_excess_grad_antisymmetric_noise ] );
    ]
