(* Tests for the host-fault chaos layer: the --chaos spec grammar
   (qcheck round-trip through the canonical printer), the checksummed
   Exec.Io record envelope (truncation / flips / garbage detected with
   a byte position, never served), the Chaos.Io write discipline
   (structured faults, orphaned-tmp sweep), the self-healing domain
   pool (kill schedules identical at sizes 1 and 4), and the registry's
   recovery transparency: resumes after every fault class render
   byte-identical to a clean run. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Install a plane for the duration of [f], with counters reset on both
   sides — the plane is process-global, so no fault schedule may leak
   into a sibling test. *)
let with_plane ?(seed = 0) spec f =
  Chaos.Plane.reset_stats ();
  Chaos.Plane.install ~seed (Chaos.Spec.of_string_exn spec);
  Fun.protect
    ~finally:(fun () ->
      Chaos.Plane.clear ();
      Chaos.Plane.reset_stats ())
    f

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "libra-chaos-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

(* ------------------------------------------------------------------ *)
(* Chaos.Spec: grammar round-trip *)

(* Probabilities and window edges drawn from %g-exact values, so
   [to_string] is lossless and structural equality is the right
   round-trip check. *)
let gen_spec =
  let open QCheck.Gen in
  let p = oneofl [ 0.0; 0.1; 0.25; 0.5; 0.75; 1.0 ] in
  let item =
    oneof
      [
        map2
          (fun p keep -> Chaos.Spec.Torn { p; keep })
          p
          (oneofl [ 0.25; 0.5; 0.75 ]);
        map2 (fun p bytes -> Chaos.Spec.Flip { p; bytes }) p (int_range 1 4);
        map (fun after -> Chaos.Spec.Enospc { after }) (int_range 0 10_000);
        map (fun p -> Chaos.Spec.Eio { p }) p;
        map (fun p -> Chaos.Spec.Kill_domain { p }) p;
      ]
  in
  let windowed =
    map3
      (fun item from_ until -> { Chaos.Spec.item; from_; until })
      item
      (oneofl [ 0.0; 2.0; 16.0 ])
      (oneofl [ infinity; 8.0; 64.0 ])
  in
  map (fun items -> { Chaos.Spec.items }) (list_size (int_range 0 4) windowed)

let test_spec_round_trip =
  QCheck.Test.make ~count:200 ~name:"chaos spec: parse (to_string s) = s"
    (QCheck.make ~print:(fun s -> Chaos.Spec.to_string s) gen_spec)
    (fun s -> Chaos.Spec.of_string (Chaos.Spec.to_string s) = Ok s)

let test_spec_none_and_errors () =
  check_bool "empty is none" true (Chaos.Spec.of_string "" = Ok Chaos.Spec.empty);
  check_bool "none is empty" true
    (Chaos.Spec.of_string "none" = Ok Chaos.Spec.empty);
  check_string "none prints canonically" "none"
    (Chaos.Spec.to_string Chaos.Spec.empty);
  (* Malformed specs pinpoint the offending '+'-separated item. *)
  (match Chaos.Spec.of_string "torn+bogus:p=1" with
  | Error m -> check_bool "unknown fault names its position" true
      (contains m "chaos item 2" && contains m "bogus")
  | Ok _ -> Alcotest.fail "unknown fault accepted");
  (match Chaos.Spec.of_string "torn:p=x" with
  | Error m -> check_bool "non-numeric value rejected" true
      (contains m "not a number")
  | Ok _ -> Alcotest.fail "non-numeric value accepted");
  match Chaos.Spec.of_string "eio:q=1" with
  | Error m -> check_bool "unknown key rejected" true (contains m "unknown key")
  | Ok _ -> Alcotest.fail "unknown key accepted"

(* ------------------------------------------------------------------ *)
(* Exec.Io: the checksummed record envelope *)

let test_envelope_round_trip () =
  let payload = "report body\nwith a second line" in
  match Exec.Io.unseal ~path:"cell" (Exec.Io.seal payload) with
  | Ok p -> check_string "seal/unseal round-trips" payload p
  | Error c -> Alcotest.fail ("round-trip rejected: " ^ Exec.Io.corrupt_to_string c)

let expect_corrupt name ~expect blob =
  match Exec.Io.unseal ~path:"cell" blob with
  | Ok _ -> Alcotest.fail (name ^ ": corruption served as a hit")
  | Error { offset; reason; _ } ->
    check_bool
      (Printf.sprintf "%s: reason %S names the cause" name reason)
      true (contains reason expect);
    offset

let test_envelope_detects_corruption () =
  let sealed = Exec.Io.seal "0123456789" in
  (* Truncation: the header's declared length no longer matches. *)
  let off =
    expect_corrupt "truncated" ~expect:"truncated payload"
      (String.sub sealed 0 (String.length sealed - 3))
  in
  check_bool "truncation offset past the header" true (off > 0);
  (* A flipped payload byte fails the digest at the body offset. *)
  let flipped = Bytes.of_string sealed in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 0x01));
  ignore
    (expect_corrupt "bit flip" ~expect:"checksum mismatch"
       (Bytes.to_string flipped));
  (* Garbage has no magic; the offset is the start of the file. *)
  check_int "garbage detected at byte 0" 0
    (expect_corrupt "garbage" ~expect:"bad magic" "not a record at all");
  ignore (expect_corrupt "empty" ~expect:"bad magic" "")

let test_read_record_counts_detections () =
  (* Verify-on-read accounting is independent of any installed plane:
     a corrupt cell on a clean host still counts (and still drives
     exit code 6 in the CLIs). *)
  let dir = temp_dir () in
  let path = Filename.concat dir "cell.ckpt" in
  Exec.Io.write_record ~path "payload";
  let before = Chaos.Plane.corrupt_detected () in
  (match Exec.Io.read_record path with
  | Exec.Io.Hit p -> check_string "clean record read back" "payload" p
  | _ -> Alcotest.fail "clean record not served");
  let oc = open_out_bin path in
  output_string oc "%LIBRA-CKPT 1 len=7 md5=0000";
  close_out oc;
  (match Exec.Io.read_record path with
  | Exec.Io.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated record not detected");
  check_int "detection counted without a plane" (before + 1)
    (Chaos.Plane.corrupt_detected ())

(* ------------------------------------------------------------------ *)
(* Chaos.Io: write discipline and structured faults *)

let test_sweep_orphaned_tmp () =
  let dir = temp_dir () in
  let put name contents =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  put "a.ckpt.tmp" "torn";
  put "b.ckpt.tmp" "torn";
  put "keep.ckpt" "sealed";
  let store = Exec.Checkpoint.create ~dir in
  check_int "both orphans swept at open" 2 (Exec.Checkpoint.swept store);
  check_bool "orphans gone, real cells kept" true
    ((not (Sys.file_exists (Filename.concat dir "a.ckpt.tmp")))
    && (not (Sys.file_exists (Filename.concat dir "b.ckpt.tmp")))
    && Sys.file_exists (Filename.concat dir "keep.ckpt"))

let expect_fault name thunk =
  match thunk () with
  | () -> Alcotest.fail (name ^ ": fault did not surface")
  | exception Chaos.Io.Fault { fault; _ } ->
    check_string (name ^ ": fault class named") name fault

let test_write_faults_are_structured () =
  let dir = temp_dir () in
  let path = Filename.concat dir "out.dat" in
  with_plane "torn:p=1,keep=0.5" (fun () ->
      expect_fault "torn" (fun () -> Chaos.Io.write_file path "0123456789");
      check_bool "torn leaves the orphan, not the destination" true
        (Sys.file_exists (path ^ ".tmp") && not (Sys.file_exists path));
      check_int "surfaced count drives exit 6" 1 (Chaos.Plane.surfaced ()));
  Sys.remove (path ^ ".tmp");
  with_plane "enospc:after=0" (fun () ->
      expect_fault "enospc" (fun () -> Chaos.Io.write_file path "0123456789");
      check_bool "enospc leaves nothing behind" true
        ((not (Sys.file_exists path)) && not (Sys.file_exists (path ^ ".tmp"))));
  with_plane "eio:p=1" (fun () ->
      expect_fault "eio" (fun () -> Chaos.Io.write_file path "0123456789");
      expect_fault "eio" (fun () -> ignore (Chaos.Io.read_file path)))

let test_flip_caught_by_verify_on_read () =
  let dir = temp_dir () in
  let path = Filename.concat dir "cell.ckpt" in
  let payload = String.make 64 'x' in
  with_plane "flip:p=1,bytes=1" (fun () ->
      (* The write "succeeds": silent corruption surfaces only at the
         verify-on-read layer, as Corrupt — never as a lucky Hit. *)
      Exec.Io.write_record ~path payload;
      check_bool "flip is silent at write time" true (Sys.file_exists path);
      check_int "one flip injected" 1 (Chaos.Plane.stats ()).Chaos.Plane.flips);
  match Exec.Io.read_record path with
  | Exec.Io.Corrupt { reason; _ } ->
    check_bool "flip detected with a cause" true (String.length reason > 0)
  | Exec.Io.Hit _ -> Alcotest.fail "flipped record served as a hit"
  | Exec.Io.Miss -> Alcotest.fail "flipped record read as a miss"

let test_checkpoint_corrupt_and_quarantine () =
  let dir = temp_dir () in
  let store = Exec.Checkpoint.create ~dir in
  let key = Exec.Checkpoint.key ~parts:[ "fig7"; "quick" ] in
  Exec.Checkpoint.save store ~key "the report";
  (* Shell-style truncation: keep the first 30 bytes of the cell. *)
  let path = Exec.Checkpoint.path store ~key in
  let ic = open_in_bin path in
  let prefix = really_input_string ic (min 30 (in_channel_length ic)) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc prefix;
  close_out oc;
  (match Exec.Checkpoint.load store ~key with
  | Exec.Checkpoint.Corrupt { reason; path = p } ->
    check_string "corrupt names the cell" path p;
    check_bool "reason carries the byte position" true (contains reason "at byte")
  | _ -> Alcotest.fail "truncated cell not detected");
  (match Exec.Checkpoint.quarantine store ~key with
  | Some q ->
    check_bool "evidence survives quarantine" true
      (Sys.file_exists q && Filename.check_suffix q ".corrupt")
  | None -> Alcotest.fail "quarantine failed");
  check_bool "quarantined key reads Miss again" true
    (Exec.Checkpoint.load store ~key = Exec.Checkpoint.Miss)

let test_supervisor_maps_fault_to_corrupt () =
  match
    Exec.Supervisor.protect ~context:"cell" (fun ~attempt:_ ->
        raise (Chaos.Io.Fault { fault = "torn"; path = "/store/x.ckpt"; detail = "d" }))
  with
  | Ok _ -> Alcotest.fail "fault swallowed"
  | Error f ->
    check_bool "kind is Corrupt with the class and path" true
      (f.Exec.Supervisor.kind
      = Exec.Supervisor.Corrupt { path = "/store/x.ckpt"; fault = "torn" });
    check_string "report kind" "corrupt"
      (Exec.Supervisor.kind_name f.Exec.Supervisor.kind);
    check_bool "render names the host fault" true
      (List.exists
         (fun l -> contains l "host fault: torn at /store/x.ckpt")
         (Exec.Supervisor.render f))

(* ------------------------------------------------------------------ *)
(* Exec.Pool: kill-domain schedules heal identically at any size *)

let test_pool_kill_deterministic () =
  let input = Array.init 12 (fun i -> i + 1) in
  let expected = Array.map (fun x -> x * x) input in
  let run size =
    (* Reinstall per run: the task-sequence counter lives in the
       installed state, so each run draws the same fates for the same
       submission order. *)
    with_plane ~seed:7 "kill-domain:p=0.7" (fun () ->
        let pool = Exec.Pool.create ~size () in
        Fun.protect
          ~finally:(fun () -> Exec.Pool.shutdown pool)
          (fun () ->
            let out = Exec.Pool.map pool (fun x -> x * x) input in
            let st = Chaos.Plane.stats () in
            (out, st.Chaos.Plane.kills, st.Chaos.Plane.resurrections)))
  in
  let out1, kills1, res1 = run 1 in
  let out4, kills4, res4 = run 4 in
  check_bool "killed tasks still produce every result" true
    (out1 = expected && out4 = expected);
  check_bool "schedule actually fired" true (kills1 > 0);
  check_int "every kill resurrected" kills1 res1;
  check_int "kill schedule identical at sizes 1 and 4" kills1 kills4;
  check_int "resurrections identical at sizes 1 and 4" res1 res4

let test_pool_kill_p1_terminates () =
  (* Even kill-domain:p=1 terminates: attempts past the immunity cap
     run unkilled, so no task can starve forever. *)
  with_plane "kill-domain:p=1" (fun () ->
      let pool = Exec.Pool.create ~size:4 () in
      Fun.protect
        ~finally:(fun () -> Exec.Pool.shutdown pool)
        (fun () ->
          let out = Exec.Pool.map pool (fun x -> x + 1) (Array.init 6 Fun.id) in
          check_bool "all tasks completed under p=1" true
            (out = Array.init 6 (fun i -> i + 1))))

(* ------------------------------------------------------------------ *)
(* Registry recovery transparency: resume after every fault class
   renders byte-identical to a clean run *)

let toy_entries =
  List.map
    (fun (id, v) ->
      {
        Harness.Registry.id;
        what = "toy entry";
        group = id;
        run =
          (fun () ->
            Harness.Report.capture (fun () ->
                Harness.Report.printf "toy %s\n" id;
                Harness.Report.result "value" (string_of_int v)));
      })
    [ ("alpha", 1); ("beta", 2); ("gamma", 3) ]

let render_outcomes outcomes =
  String.concat ""
    (List.map
       (fun (o : Harness.Registry.outcome) -> Harness.Report.render o.report)
       outcomes)

let run_toys ?(pool = Exec.Pool.sequential) supervision =
  Harness.Registry.run_entries ~pool ~supervision ~entries:toy_entries ()

let test_resume_equals_clean_under_faults () =
  let reference = render_outcomes (run_toys Harness.Registry.default_supervision) in
  check_bool "reference output non-empty" true (String.length reference > 0);
  let supervised dir =
    {
      Harness.Registry.default_supervision with
      checkpoint = Some (Exec.Checkpoint.create ~dir);
      resume = true;
    }
  in
  (* Torn saves: every cell save crashes mid-write. The run itself is
     unharmed (reports are already in hand), the orphans are swept at
     the next open, and the rerun re-executes from scratch. *)
  let dir = temp_dir () in
  let out_torn =
    with_plane "torn:p=1" (fun () -> run_toys (supervised dir))
  in
  check_string "torn saves leave output identical" reference
    (render_outcomes out_torn);
  check_bool "torn saves reported per entry" true
    (List.for_all
       (fun (o : Harness.Registry.outcome) ->
         match o.io_fault with Some s -> contains s "torn" | None -> false)
       out_torn);
  let reopened = Exec.Checkpoint.create ~dir in
  check_int "torn orphans swept at reopen" 3 (Exec.Checkpoint.swept reopened);
  let sv = supervised dir in
  check_string "rerun after torn run is identical" reference
    (render_outcomes (run_toys sv));
  let resumed = run_toys sv in
  check_string "second rerun resumes identically" reference
    (render_outcomes resumed);
  check_int "all cells resumed" 3
    (Harness.Registry.summarize resumed).Harness.Registry.resumed;
  (* Flipped saves: silent corruption is caught on resume, the cell is
     quarantined and re-executed — the rendered output never wavers. *)
  let dir = temp_dir () in
  let out_flip =
    with_plane "flip:p=1,bytes=1" (fun () -> run_toys (supervised dir))
  in
  check_string "flipped saves leave output identical" reference
    (render_outcomes out_flip);
  let sv = supervised dir in
  let healed = run_toys sv in
  check_string "resume over flipped cells re-executes identically" reference
    (render_outcomes healed);
  check_int "every flipped cell detected as corrupt" 3
    (Harness.Registry.summarize healed).Harness.Registry.corrupt;
  check_bool "quarantine evidence on disk" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".corrupt")
       (Sys.readdir dir));
  check_int "third run serves the healed cells" 3
    (Harness.Registry.summarize (run_toys sv)).Harness.Registry.resumed;
  (* Enospc and eio degrade the cells, never the output. *)
  let dir = temp_dir () in
  let out_enospc =
    with_plane "enospc:after=0" (fun () -> run_toys (supervised dir))
  in
  check_string "full disk leaves output identical" reference
    (render_outcomes out_enospc);
  let dir = temp_dir () in
  let out_eio = with_plane "eio:p=1" (fun () -> run_toys (supervised dir)) in
  check_string "eio leaves output identical" reference
    (render_outcomes out_eio);
  check_bool "eio named per entry" true
    (List.for_all
       (fun (o : Harness.Registry.outcome) ->
         match o.io_fault with Some s -> contains s "eio" | None -> false)
       out_eio);
  (* Killed domains: entries themselves ride the self-healing pool. *)
  let out_kill =
    with_plane ~seed:3 "kill-domain:p=1" (fun () ->
        let pool = Exec.Pool.create ~size:4 () in
        Fun.protect
          ~finally:(fun () -> Exec.Pool.shutdown pool)
          (fun () -> run_toys ~pool Harness.Registry.default_supervision))
  in
  check_string "killed domains leave output identical" reference
    (render_outcomes out_kill)

(* ------------------------------------------------------------------ *)
(* Harness.Scenario: malformed files rejected with positions *)

let scn_file contents =
  let dir = temp_dir () in
  let path = Filename.concat dir "case.scn" in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path

let expect_scn_error name ~expect contents =
  match Harness.Scenario.of_file (scn_file contents) with
  | Ok _ -> Alcotest.fail (name ^ ": malformed scenario accepted")
  | Error m ->
    check_bool
      (Printf.sprintf "%s: error %S names the position" name m)
      true (contains m expect)

let test_scenario_rejects_garbage () =
  (match Harness.Scenario.of_file "/nonexistent/x.scn" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted");
  expect_scn_error "non-kv line" ~expect:"line 3"
    "cca: cubic\nimpair: clean\nwhat is this";
  expect_scn_error "unknown key" ~expect:"unknown key \"bogus\""
    "cca: cubic\nimpair: clean\nbogus: 1";
  expect_scn_error "bad number" ~expect:"line 3: key seed"
    "cca: cubic\nimpair: clean\nseed: abc";
  expect_scn_error "missing impair" ~expect:"impair" "cca: cubic\nseed: 4";
  match
    Harness.Scenario.of_file
      (scn_file "# comment\nname: ok\ncca: cubic\nimpair: clean\nseed: 4\n")
  with
  | Ok c ->
    check_string "valid file parses" "ok" c.Harness.Scenario.name;
    check_int "numeric field read" 4 c.Harness.Scenario.seed
  | Error m -> Alcotest.fail ("valid scenario rejected: " ^ m)

let () =
  Alcotest.run "chaos"
    [
      ( "spec",
        [
          QCheck_alcotest.to_alcotest test_spec_round_trip;
          Alcotest.test_case "none and errors" `Quick test_spec_none_and_errors;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "round trip" `Quick test_envelope_round_trip;
          Alcotest.test_case "detects corruption" `Quick
            test_envelope_detects_corruption;
          Alcotest.test_case "counts detections" `Quick
            test_read_record_counts_detections;
        ] );
      ( "io",
        [
          Alcotest.test_case "sweeps orphaned tmp" `Quick test_sweep_orphaned_tmp;
          Alcotest.test_case "structured write faults" `Quick
            test_write_faults_are_structured;
          Alcotest.test_case "flip caught on read" `Quick
            test_flip_caught_by_verify_on_read;
          Alcotest.test_case "quarantine" `Quick
            test_checkpoint_corrupt_and_quarantine;
          Alcotest.test_case "supervisor corrupt kind" `Quick
            test_supervisor_maps_fault_to_corrupt;
        ] );
      ( "pool",
        [
          Alcotest.test_case "kill schedule sizes 1 vs 4" `Quick
            test_pool_kill_deterministic;
          Alcotest.test_case "p=1 terminates" `Quick test_pool_kill_p1_terminates;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "resume equals clean" `Quick
            test_resume_equals_clean_under_faults;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "rejects garbage" `Quick test_scenario_rejects_garbage;
        ] );
    ]
