(* Tests for the learning substrate: NN gradients, Adam, PPO pieces,
   the fluid environment, features, rewards, and the PCC machinery. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Neural network *)

let spec = { Rlcc.Nn.input = 3; hidden = [ 8; 8 ]; output = 2; hidden_act = Rlcc.Nn.Tanh }

let test_nn_forward_deterministic () =
  let nn = Rlcc.Nn.create spec in
  let x = [| 0.3; -0.7; 1.2 |] in
  let a = (Rlcc.Nn.forward nn x).Rlcc.Nn.out in
  let b = (Rlcc.Nn.forward nn x).Rlcc.Nn.out in
  Alcotest.(check (array (float 0.0))) "same output" a b

let test_nn_output_dims () =
  let nn = Rlcc.Nn.create spec in
  check_int "output size" 2 (Array.length (Rlcc.Nn.forward nn [| 0.1; 0.2; 0.3 |]).Rlcc.Nn.out)

(* Central-difference gradient check on a scalar loss L = sum(out). *)
let test_nn_gradients_match_finite_differences () =
  let nn = Rlcc.Nn.create ~rng:(Netsim.Rng.create 3) spec in
  let x = [| 0.5; -0.25; 0.8 |] in
  Rlcc.Nn.zero_grads nn;
  let cache = Rlcc.Nn.forward nn x in
  ignore (Rlcc.Nn.backward nn cache ~dout:[| 1.0; 1.0 |]);
  let eps = 1e-5 in
  let loss () =
    let out = (Rlcc.Nn.forward nn x).Rlcc.Nn.out in
    out.(0) +. out.(1)
  in
  (* Spot-check a spread of parameters. *)
  let n = Rlcc.Nn.n_params nn in
  List.iter
    (fun idx ->
      let idx = idx mod n in
      let saved = nn.Rlcc.Nn.params.(idx) in
      nn.Rlcc.Nn.params.(idx) <- saved +. eps;
      let up = loss () in
      nn.Rlcc.Nn.params.(idx) <- saved -. eps;
      let down = loss () in
      nn.Rlcc.Nn.params.(idx) <- saved;
      let numeric = (up -. down) /. (2.0 *. eps) in
      let analytic = nn.Rlcc.Nn.grads.(idx) in
      check_bool
        (Printf.sprintf "grad %d: %.6f vs %.6f" idx analytic numeric)
        true
        (Float.abs (analytic -. numeric) < 1e-4 *. Float.max 1.0 (Float.abs numeric)))
    [ 0; 7; 23; 55; 91; n - 1 ]

let test_nn_input_gradient () =
  let nn = Rlcc.Nn.create ~rng:(Netsim.Rng.create 5) spec in
  let x = [| 0.1; 0.2; -0.4 |] in
  Rlcc.Nn.zero_grads nn;
  let cache = Rlcc.Nn.forward nn x in
  let dx = Rlcc.Nn.backward nn cache ~dout:[| 1.0; 0.0 |] in
  let eps = 1e-5 in
  let loss v =
    let x' = Array.copy x in
    x'.(1) <- v;
    (Rlcc.Nn.forward nn x').Rlcc.Nn.out.(0)
  in
  let numeric = (loss (x.(1) +. eps) -. loss (x.(1) -. eps)) /. (2.0 *. eps) in
  check_bool "input grad matches" true (Float.abs (dx.(1) -. numeric) < 1e-4)

let prop_forward_count_increments =
  QCheck.Test.make ~name:"forward counter counts" ~count:20 QCheck.small_int
    (fun n ->
      let n = (n mod 10) + 1 in
      let nn = Rlcc.Nn.create spec in
      let before = Rlcc.Nn.forward_count () in
      for _ = 1 to n do
        ignore (Rlcc.Nn.forward nn [| 0.0; 0.0; 0.0 |])
      done;
      Rlcc.Nn.forward_count () = before + n)

(* ------------------------------------------------------------------ *)
(* Adam *)

let test_adam_minimises_quadratic () =
  (* f(p) = sum (p - target)^2 *)
  let params = [| 5.0; -3.0 |] and target = [| 1.0; 2.0 |] in
  let adam = Rlcc.Adam.create ~lr:0.1 2 in
  for _ = 1 to 500 do
    let grads = Array.init 2 (fun i -> 2.0 *. (params.(i) -. target.(i))) in
    Rlcc.Adam.step adam ~params ~grads
  done;
  check_bool "converged to target" true
    (Float.abs (params.(0) -. 1.0) < 0.05 && Float.abs (params.(1) -. 2.0) < 0.05)

(* ------------------------------------------------------------------ *)
(* PPO *)

let mk_ppo ?(state_dim = 4) () =
  Rlcc.Ppo.create (Rlcc.Ppo.default_config ~state_dim)

let test_ppo_logprob_peak_at_mean () =
  let ppo = mk_ppo () in
  let state = [| 0.1; 0.2; 0.3; 0.4 |] in
  let mean = Rlcc.Ppo.mean_action ppo state in
  let at_mean = Rlcc.Ppo.log_prob ppo ~mean ~action:mean in
  let off = Rlcc.Ppo.log_prob ppo ~mean ~action:(mean +. 1.0) in
  check_bool "density peaks at the mean" true (at_mean > off)

let test_ppo_gae_discounts () =
  let ppo = mk_ppo () in
  let mk reward val_est = { Rlcc.Ppo.state = [||]; action = 0.0; logp = 0.0; val_est; reward } in
  let transitions = [| mk 1.0 0.0; mk 1.0 0.0; mk 1.0 0.0 |] in
  let adv, ret = Rlcc.Ppo.advantages ppo ~transitions ~last_value:0.0 in
  (* With V = 0: returns are lambda-discounted reward sums, decreasing
     towards the episode end. *)
  check_bool "advantage decreases towards the end" true (adv.(0) > adv.(1) && adv.(1) > adv.(2));
  check_bool "returns equal advantages when V=0" true (ret.(0) = adv.(0))

let test_ppo_learns_a_bandit () =
  (* One state, reward = -(a - 1.5)^2: the mean action must move
     towards 1.5. *)
  let ppo = mk_ppo ~state_dim:1 () in
  let rng = Netsim.Rng.create 7 in
  let state = [| 1.0 |] in
  let before = Rlcc.Ppo.mean_action ppo state in
  for _ = 1 to 60 do
    let transitions =
      Array.init 64 (fun _ ->
          let action, logp, val_est = Rlcc.Ppo.sample ppo rng state in
          let reward = -.((action -. 1.5) ** 2.0) in
          { Rlcc.Ppo.state; action; logp; val_est; reward })
    in
    Rlcc.Ppo.update ppo rng ~transitions ~last_value:0.0
  done;
  let after = Rlcc.Ppo.mean_action ppo state in
  check_bool
    (Printf.sprintf "mean moved toward 1.5 (%.2f -> %.2f)" before after)
    true
    (Float.abs (after -. 1.5) < Float.abs (before -. 1.5)
    && Float.abs (after -. 1.5) < 0.5)

(* ------------------------------------------------------------------ *)
(* Environment *)

let test_env_conserves_fluid () =
  let cfg = Rlcc.Env.default_cfg in
  let env = Rlcc.Env.create cfg in
  (* Below capacity: no loss, rtt at floor. *)
  let obs = Rlcc.Env.step env ~rate:(cfg.Rlcc.Env.capacity /. 2.0) in
  check_bool "no loss below capacity" true (obs.Rlcc.Features.loss_rate < 1e-9);
  check_bool "rtt at floor" true (Float.abs (obs.Rlcc.Features.avg_rtt -. cfg.Rlcc.Env.min_rtt) < 1e-6)

let test_env_overload_loses () =
  let cfg = Rlcc.Env.default_cfg in
  let env = Rlcc.Env.create cfg in
  let obs = ref (Rlcc.Env.step env ~rate:cfg.Rlcc.Env.capacity) in
  for _ = 1 to 20 do
    obs := Rlcc.Env.step env ~rate:(3.0 *. cfg.Rlcc.Env.capacity)
  done;
  check_bool "persistent overload loses heavily" true (!obs.Rlcc.Features.loss_rate > 0.4);
  check_bool "queue inflates rtt" true
    (!obs.Rlcc.Features.avg_rtt > 1.5 *. cfg.Rlcc.Env.min_rtt)

let prop_env_loss_rate_bounded =
  QCheck.Test.make ~name:"env loss rate in [0,1]" ~count:50
    QCheck.(pair small_int (float_range 0.1 8.0))
    (fun (seed, factor) ->
      let cfg = Rlcc.Env.default_cfg in
      let env = Rlcc.Env.create ~seed cfg in
      let ok = ref true in
      for _ = 1 to 20 do
        let obs = Rlcc.Env.step env ~rate:(factor *. cfg.Rlcc.Env.capacity) in
        let l = obs.Rlcc.Features.loss_rate in
        if l < 0.0 || l > 1.0 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Features and actions *)

let obs ?(throughput = 1e6) ?(avg_rtt = 0.1) ?(loss = 0.0) () =
  {
    Rlcc.Features.send_rate = 1e6;
    throughput;
    avg_rtt;
    min_rtt = 0.05;
    rtt_gradient = 0.0;
    loss_rate = loss;
    ack_gap_ewma = 0.01;
    send_gap_ewma = 0.01;
    rate_norm = 2e6;
  }

let test_feature_widths () =
  check_int "libra set width" 4 (Rlcc.Features.set_width Rlcc.Features.libra);
  check_int "baseline width (vi counts twice)" 6
    (Rlcc.Features.set_width Rlcc.Features.baseline)

let test_history_stacks_oldest_first () =
  let h = Rlcc.Features.History.create ~set:Rlcc.Features.libra ~h:3 in
  Rlcc.Features.History.push h (obs ~loss:0.1 ());
  Rlcc.Features.History.push h (obs ~loss:0.2 ());
  let s = Rlcc.Features.History.state h in
  check_int "dim" 12 (Array.length s);
  (* Loss is feature index 1 within the 4-wide libra set; newest frame
     occupies the last slot (offset 8), the previous one offset 4, the
     unfilled oldest slot is zero padding. *)
  check_bool "newest last" true (Float.abs (s.(8 + 1) -. 0.2) < 1e-9);
  check_bool "older before" true (Float.abs (s.(4 + 1) -. 0.1) < 1e-9);
  check_bool "pad zero" true (s.(0 + 1) = 0.0)

let test_actions_mimd_orca_range () =
  let r = Rlcc.Actions.apply Rlcc.Actions.Mimd_orca ~rate:1e6 ~min_rtt:0.05 ~mss:1500 5.0 in
  Alcotest.(check (float 1.0)) "clamped to 2^2" 4e6 r;
  let r = Rlcc.Actions.apply Rlcc.Actions.Mimd_orca ~rate:1e6 ~min_rtt:0.05 ~mss:1500 (-9.0) in
  Alcotest.(check (float 1.0)) "clamped to 2^-2" 0.25e6 r

let prop_actions_bounded =
  QCheck.Test.make ~name:"actions keep rate in [1500, max_rate]" ~count:200
    QCheck.(triple (float_range (-20.0) 20.0) (float_range 1e3 1e9) (int_range 0 2))
    (fun (a, rate, mode_idx) ->
      let mode =
        match mode_idx with
        | 0 -> Rlcc.Actions.Aiad 10.0
        | 1 -> Rlcc.Actions.Mimd_aurora 10.0
        | _ -> Rlcc.Actions.Mimd_orca
      in
      let r = Rlcc.Actions.apply mode ~rate ~min_rtt:0.05 ~mss:1500 a in
      r >= 1500.0 && r <= Rlcc.Actions.max_rate)

(* ------------------------------------------------------------------ *)
(* Reward *)

let test_reward_monotone_in_throughput () =
  let r1 = Rlcc.Reward.value Rlcc.Reward.default (obs ~throughput:1e6 ()) in
  let r2 = Rlcc.Reward.value Rlcc.Reward.default (obs ~throughput:2e6 ()) in
  check_bool "higher throughput, higher reward" true (r2 > r1)

let test_reward_penalises_loss_and_delay () =
  let base = Rlcc.Reward.value Rlcc.Reward.default (obs ()) in
  let lossy = Rlcc.Reward.value Rlcc.Reward.default (obs ~loss:0.1 ()) in
  let slow = Rlcc.Reward.value Rlcc.Reward.default (obs ~avg_rtt:0.3 ()) in
  check_bool "loss penalised" true (lossy < base);
  check_bool "delay penalised" true (slow < base)

let test_reward_without_loss_ignores_loss () =
  let cfg = { Rlcc.Reward.default with Rlcc.Reward.include_loss = false } in
  let a = Rlcc.Reward.value cfg (obs ()) in
  let b = Rlcc.Reward.value cfg (obs ~loss:0.5 ()) in
  Alcotest.(check (float 1e-12)) "identical" a b

let test_reward_delta_tracker () =
  let tr = Rlcc.Reward.tracker { Rlcc.Reward.default with Rlcc.Reward.use_delta = true } in
  let first = Rlcc.Reward.signal tr (obs ~throughput:1e6 ()) in
  let second = Rlcc.Reward.signal tr (obs ~throughput:2e6 ()) in
  Alcotest.(check (float 1e-12)) "first delta is zero" 0.0 first;
  check_bool "improvement positive" true (second > 0.0)

(* ------------------------------------------------------------------ *)
(* Vivace *)

let test_vivace_utility_shape () =
  let snap_ok =
    { Netsim.Monitor.duration = 0.05; throughput = 1e6; avg_rtt = 0.05; min_rtt = 0.05;
      rtt_gradient = 0.0; rtt_grad_se = 0.001; loss_rate = 0.0; acked = 50; lost_pkts = 0 }
  in
  let snap_bad = { snap_ok with Netsim.Monitor.rtt_gradient = 0.05; loss_rate = 0.1 } in
  let u = Rlcc.Vivace.default_utility in
  let good = Rlcc.Vivace.utility u ~rate_bps:6e6 snap_ok in
  let bad = Rlcc.Vivace.utility u ~rate_bps:6e6 snap_bad in
  check_bool "congestion lowers utility" true (bad < good);
  (* With clean conditions, higher rate has higher utility (x^0.9). *)
  let faster = Rlcc.Vivace.utility u ~rate_bps:12e6 snap_ok in
  check_bool "monotone when clean" true (faster > good)

let test_vivace_converges_near_capacity () =
  let link =
    { Netsim.Network.rate_fn = (fun _ -> Netsim.Units.mbps_to_bps 24.0); const_rate = None;
      grain = 0.02; buffer_bytes = Netsim.Units.kb 150; loss_p = 0.0 ; aqm = `Fifo}
  in
  let flows =
    [ { Netsim.Network.cca = Rlcc.Vivace.make (); start_at = 0.0; stop_at = 15.0; rtt = 0.03 } ]
  in
  let s = Netsim.Network.run ~link ~flows ~duration:15.0 () in
  check_bool "utilization over 70%" true (Netsim.Network.utilization s > 0.7);
  match s.Netsim.Network.flows with
  | [ f ] ->
    check_bool "low loss" true (Netsim.Flow_stats.loss_rate f.Netsim.Network.stats < 0.05)
  | _ -> Alcotest.fail "one flow"

(* ------------------------------------------------------------------ *)
(* Tagger *)

let test_tagger_routes_by_seq () =
  let tagger = Netsim.Tagger.create ~initial:"a" in
  Netsim.Tagger.mark tagger "b";
  Netsim.Tagger.on_send tagger ~seq:10;
  Alcotest.(check string) "before boundary" "a" (Netsim.Tagger.on_ack tagger ~seq:9);
  Alcotest.(check string) "at boundary" "b" (Netsim.Tagger.on_ack tagger ~seq:10);
  Alcotest.(check string) "after" "b" (Netsim.Tagger.on_ack tagger ~seq:11)

(* ------------------------------------------------------------------ *)
(* Training (slow) *)

let test_training_improves_reward () =
  let cfg = { Rlcc.Train.default_config with Rlcc.Train.episodes = 100 } in
  let outcome = Rlcc.Train.run cfg in
  let r = outcome.Rlcc.Train.episode_rewards in
  let n = Array.length r in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let early = mean (Array.sub r 0 10) and late = mean (Array.sub r (n - 20) 20) in
  check_bool
    (Printf.sprintf "reward improved (%.0f -> %.0f)" early late)
    true (late > early)

(* ------------------------------------------------------------------ *)
(* Supervised training: divergence guard, snapshot/resume, cache
   poisoning *)

(* A poisoned update (all-NaN actor) must be rolled back to the last
   finite state and training must continue — and the rollback must be
   visible both in the outcome and as a harness trace event. *)
let test_train_nan_rollback_recovers () =
  let cfg =
    { Rlcc.Train.default_config with Rlcc.Train.episodes = 5; steps_per_episode = 30; seed = 91 }
  in
  let tracer = Obs.Trace.create () in
  let outcome =
    Obs.Trace.run tracer ~lane:0 (fun () ->
        Rlcc.Train.run
          ~after_update:(fun ~ep policy ->
            if ep = 2 then begin
              let snap = Rlcc.Ppo.snapshot policy in
              Array.fill snap.Rlcc.Ppo.s_actor 0
                (Array.length snap.Rlcc.Ppo.s_actor)
                Float.nan;
              Rlcc.Ppo.restore policy snap
            end)
          cfg)
  in
  check_int "exactly one rollback" 1 outcome.Rlcc.Train.rollbacks;
  check_bool "policy finite after recovery" true
    (Rlcc.Ppo.all_finite outcome.Rlcc.Train.policy);
  check_int "all episodes ran" 5 (Array.length outcome.Rlcc.Train.episode_rewards);
  let jsonl = Obs.Trace.to_jsonl tracer in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "nan-rollback harness event traced" true
    (contains "nan-rollback" jsonl)

(* Interrupt/resume is bit-exact: training to a snapshot, serializing it
   through JSON, and resuming must reproduce the uninterrupted run's
   rewards and final parameters exactly. *)
let test_train_snapshot_resume_bit_identical () =
  let cfg =
    { Rlcc.Train.default_config with Rlcc.Train.episodes = 6; steps_per_episode = 30; seed = 93 }
  in
  let whole = Rlcc.Train.run cfg in
  let snap = ref None in
  ignore
    (Rlcc.Train.run ~snapshot_every:3
       ~on_snapshot:(fun ~episode s -> if episode = 3 then snap := Some s)
       cfg);
  let snap = Option.get !snap in
  (* Round-trip the snapshot through its JSON serialization (hex-float
     fields), as bin/train's checkpoint store does. *)
  let blob = Obs.Json.to_compact (Rlcc.Train.snapshot_to_json snap) in
  let snap =
    match Obs.Json.parse blob with
    | Ok j -> Option.get (Rlcc.Train.snapshot_of_json j)
    | Error m -> Alcotest.fail ("snapshot reparse failed: " ^ m)
  in
  let resumed = Rlcc.Train.run ~resume_from:snap cfg in
  check_bool "episode rewards bit-identical" true
    (whole.Rlcc.Train.episode_rewards = resumed.Rlcc.Train.episode_rewards);
  check_bool "final parameters bit-identical" true
    (Rlcc.Ppo.snapshot whole.Rlcc.Train.policy
    = Rlcc.Ppo.snapshot resumed.Rlcc.Train.policy);
  check_bool "tail stats bit-identical" true
    (whole.Rlcc.Train.final_throughput = resumed.Rlcc.Train.final_throughput
    && whole.Rlcc.Train.final_rtt = resumed.Rlcc.Train.final_rtt
    && whole.Rlcc.Train.final_loss = resumed.Rlcc.Train.final_loss)

let test_resume_rejects_other_config () =
  let cfg =
    { Rlcc.Train.default_config with Rlcc.Train.episodes = 4; steps_per_episode = 20; seed = 95 }
  in
  let snap = ref None in
  ignore
    (Rlcc.Train.run ~snapshot_every:2
       ~on_snapshot:(fun ~episode:_ s -> snap := Some s)
       cfg);
  check_bool "config mismatch rejected" true
    (try
       ignore
         (Rlcc.Train.run ~resume_from:(Option.get !snap)
            { cfg with Rlcc.Train.seed = 96 });
       false
     with Invalid_argument _ -> true)

(* A training run killed mid-fill (here: by a deterministic budget
   deadline) must not leave a poisoned cache cell behind: the next call
   for the same configuration retrains cleanly. *)
let test_pretrained_failed_fill_retries () =
  let cfg =
    { Rlcc.Train.default_config with Rlcc.Train.episodes = 2; steps_per_episode = 20; seed = 977 }
  in
  check_bool "first fill dies on deadline" true
    (try
       ignore
         (Netsim.Budget.with_budget ~events:5 (fun () -> Rlcc.Pretrained.get cfg));
       false
     with Netsim.Budget.Exceeded _ -> true);
  let outcome = Rlcc.Pretrained.get cfg in
  check_int "second call retrained cleanly" 2
    (Array.length outcome.Rlcc.Train.episode_rewards)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "rlcc"
    [
      ( "nn",
        [
          Alcotest.test_case "deterministic forward" `Quick test_nn_forward_deterministic;
          Alcotest.test_case "output dims" `Quick test_nn_output_dims;
          Alcotest.test_case "param gradients" `Quick
            test_nn_gradients_match_finite_differences;
          Alcotest.test_case "input gradient" `Quick test_nn_input_gradient;
        ]
        @ qsuite [ prop_forward_count_increments ] );
      ("adam", [ Alcotest.test_case "minimises quadratic" `Quick test_adam_minimises_quadratic ]);
      ( "ppo",
        [
          Alcotest.test_case "logprob peak" `Quick test_ppo_logprob_peak_at_mean;
          Alcotest.test_case "gae" `Quick test_ppo_gae_discounts;
          Alcotest.test_case "learns a bandit" `Slow test_ppo_learns_a_bandit;
        ] );
      ( "env",
        [
          Alcotest.test_case "below capacity" `Quick test_env_conserves_fluid;
          Alcotest.test_case "overload" `Quick test_env_overload_loses;
        ]
        @ qsuite [ prop_env_loss_rate_bounded ] );
      ( "features",
        [
          Alcotest.test_case "widths" `Quick test_feature_widths;
          Alcotest.test_case "history order" `Quick test_history_stacks_oldest_first;
          Alcotest.test_case "mimd clamp" `Quick test_actions_mimd_orca_range;
        ]
        @ qsuite [ prop_actions_bounded ] );
      ( "reward",
        [
          Alcotest.test_case "monotone throughput" `Quick test_reward_monotone_in_throughput;
          Alcotest.test_case "penalties" `Quick test_reward_penalises_loss_and_delay;
          Alcotest.test_case "no-loss variant" `Quick test_reward_without_loss_ignores_loss;
          Alcotest.test_case "delta tracker" `Quick test_reward_delta_tracker;
        ] );
      ( "vivace",
        [
          Alcotest.test_case "utility shape" `Quick test_vivace_utility_shape;
          Alcotest.test_case "converges" `Slow test_vivace_converges_near_capacity;
        ] );
      ("tagger", [ Alcotest.test_case "routes by seq" `Quick test_tagger_routes_by_seq ]);
      ("train", [ Alcotest.test_case "improves" `Slow test_training_improves_reward ]);
      ( "supervised",
        [
          Alcotest.test_case "nan rollback" `Quick test_train_nan_rollback_recovers;
          Alcotest.test_case "snapshot resume" `Quick
            test_train_snapshot_resume_bit_identical;
          Alcotest.test_case "resume config guard" `Quick
            test_resume_rejects_other_config;
          Alcotest.test_case "cache not poisoned" `Quick
            test_pretrained_failed_fill_retries;
        ] );
    ]
