(* Tests for the trace generators. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_constant_trace () =
  let t = Traces.Rate.constant 48.0 in
  check_float "constant rate" (Netsim.Units.mbps_to_bps 48.0) (Traces.Rate.fn t 3.7)

let test_step_trace_cycles () =
  let t = Traces.Rate.step ~period:10.0 [ 10.0; 20.0 ] in
  let fn = Traces.Rate.fn t in
  check_float "first level" (Netsim.Units.mbps_to_bps 10.0) (fn 5.0);
  check_float "second level" (Netsim.Units.mbps_to_bps 20.0) (fn 15.0);
  check_float "cycles back" (Netsim.Units.mbps_to_bps 10.0) (fn 25.0)

let test_lte_deterministic_per_seed () =
  let a = Traces.Lte.generate ~seed:9 ~duration:10.0 Traces.Lte.Driving in
  let b = Traces.Lte.generate ~seed:9 ~duration:10.0 Traces.Lte.Driving in
  let same = ref true in
  for i = 0 to 99 do
    let time = 0.1 *. float_of_int i in
    if Traces.Rate.fn a time <> Traces.Rate.fn b time then same := false
  done;
  check_bool "seeded generator is deterministic" true !same

let prop_lte_within_bounds =
  QCheck.Test.make ~name:"lte rate within [0.3, 40] Mbps" ~count:20
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, idx) ->
      let scenario = List.nth Traces.Lte.all_scenarios idx in
      let t = Traces.Lte.generate ~seed ~duration:20.0 scenario in
      let ok = ref true in
      for i = 0 to 199 do
        let mbps = Netsim.Units.bps_to_mbps (Traces.Rate.fn t (0.1 *. float_of_int i)) in
        if mbps < 0.29 || mbps > 40.01 then ok := false
      done;
      !ok)

let test_lte_scenarios_have_increasing_variability () =
  let cv scenario =
    let t = Traces.Lte.generate ~seed:11 ~duration:60.0 scenario in
    let n = 3000 in
    let samples =
      Array.init n (fun i -> Traces.Rate.fn t (0.02 *. float_of_int i))
    in
    let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n in
    let var =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 samples
      /. float_of_int n
    in
    sqrt var /. mean
  in
  let stationary = cv Traces.Lte.Stationary and driving = cv Traces.Lte.Driving in
  check_bool "driving more variable than stationary" true (driving > stationary)

let test_wan_presets () =
  let inter = Traces.Wan.inter_continental ~duration:10.0 () in
  let intra = Traces.Wan.intra_continental ~duration:10.0 () in
  check_bool "inter has longer rtt" true (inter.Traces.Wan.rtt > intra.Traces.Wan.rtt);
  check_bool "inter has more loss" true
    (inter.Traces.Wan.loss_p > intra.Traces.Wan.loss_p)

let test_clamp_and_scale () =
  let t = Traces.Rate.constant 48.0 in
  let clamped = Traces.Rate.clamp ~lo_mbps:0.0 ~hi_mbps:20.0 t in
  check_float "clamped" (Netsim.Units.mbps_to_bps 20.0) (Traces.Rate.fn clamped 1.0);
  let doubled = Traces.Rate.scale 2.0 t in
  check_float "scaled" (Netsim.Units.mbps_to_bps 96.0) (Traces.Rate.fn doubled 1.0)

let test_capacity_integral_matches_constant () =
  let t = Traces.Rate.constant 12.0 in
  let bytes =
    Netsim.Network.capacity_integral ~rate_fn:(Traces.Rate.fn t)
      ~grain:(Traces.Rate.grain t) ~duration:10.0 ()
  in
  Alcotest.(check (float 1.0)) "10s at 12 Mbps"
    (10.0 *. Netsim.Units.mbps_to_bps 12.0)
    bytes

(* The constant-rate short circuit must agree with the step-walk
   integral, including at durations that are not grain multiples. *)
let test_capacity_integral_short_circuit_agrees () =
  let t = Traces.Rate.constant 37.5 in
  let rate =
    match Traces.Rate.const_bps t with
    | Some r -> r
    | None -> Alcotest.fail "constant trace must expose const_bps"
  in
  List.iter
    (fun duration ->
      let stepped =
        Netsim.Network.capacity_integral ~rate_fn:(Traces.Rate.fn t)
          ~grain:(Traces.Rate.grain t) ~duration ()
      in
      let direct =
        Netsim.Network.capacity_integral ~const_rate:rate
          ~rate_fn:(Traces.Rate.fn t) ~grain:(Traces.Rate.grain t) ~duration ()
      in
      Alcotest.(check (float 1e-3))
        (Printf.sprintf "duration %gs" duration)
        stepped direct)
    [ 0.0; 0.02; 1.0; 10.0; 19.97; 60.0 ];
  (* Varying traces must not short-circuit. *)
  let step = Traces.Rate.step ~period:5.0 [ 10.0; 20.0 ] in
  Alcotest.(check bool) "step trace is not constant" true
    (Traces.Rate.const_bps step = None);
  (* A degenerate one-level step is constant again. *)
  let flat = Traces.Rate.step ~period:5.0 [ 10.0 ] in
  Alcotest.(check bool) "one-level step is constant" true
    (Traces.Rate.const_bps flat = Some (Netsim.Units.mbps_to_bps 10.0))

(* The incremental integrator must agree with the from-scratch walk bit
   for bit, across monotone queries (the cached-steps fast path),
   repeated queries, and a backward query (which recomputes). *)
let test_capacity_integrator_incremental_agrees () =
  let step = Traces.Rate.step ~period:0.5 [ 10.0; 30.0; 20.0 ] in
  let grain = Traces.Rate.grain step in
  let query =
    Netsim.Network.capacity_integrator ~rate_fn:(Traces.Rate.fn step) ~grain ()
  in
  List.iter
    (fun d ->
      let direct =
        Netsim.Network.capacity_integral ~rate_fn:(Traces.Rate.fn step) ~grain
          ~duration:d ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "duration %gs bit-identical" d)
        true
        (query d = direct))
    [ 0.0; 0.3; 0.75; 0.75; 1.2; 3.7; 2.0; 5.0; 4.99 ];
  (* The constant-rate short circuit holds for the incremental form. *)
  let const_q =
    Netsim.Network.capacity_integrator ~const_rate:1000.0
      ~rate_fn:(fun _ -> 1000.0)
      ~grain:0.01 ()
  in
  Alcotest.(check bool) "const short-circuit" true (const_q 7.0 = 7000.0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "traces"
    [
      ( "rate",
        [
          Alcotest.test_case "constant" `Quick test_constant_trace;
          Alcotest.test_case "step cycles" `Quick test_step_trace_cycles;
          Alcotest.test_case "clamp+scale" `Quick test_clamp_and_scale;
          Alcotest.test_case "capacity integral" `Quick
            test_capacity_integral_matches_constant;
          Alcotest.test_case "capacity short-circuit" `Quick
            test_capacity_integral_short_circuit_agrees;
          Alcotest.test_case "capacity integrator incremental" `Quick
            test_capacity_integrator_incremental_agrees;
        ] );
      ( "lte",
        [
          Alcotest.test_case "deterministic" `Quick test_lte_deterministic_per_seed;
          Alcotest.test_case "variability ordering" `Quick
            test_lte_scenarios_have_increasing_variability;
        ]
        @ qsuite [ prop_lte_within_bounds ] );
      ("wan", [ Alcotest.test_case "presets" `Quick test_wan_presets ]);
    ]
