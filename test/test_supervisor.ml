(* Tests for supervised execution: Netsim.Budget deterministic
   deadlines, Exec.Supervisor crash isolation and bit-reproducible
   retries, and the Exec.Checkpoint content-addressed store. Every
   reproducibility comparison is exact ([=] on records including float
   lists): a supervised run's failure report is required to be a pure
   function of (context, seed, logical budget). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Netsim.Budget *)

let test_budget_counts_ticks () =
  (* Within budget: no raise, spend is visible. *)
  let spent =
    Netsim.Budget.with_budget ~events:10 (fun () ->
        for _ = 1 to 10 do
          Netsim.Budget.tick ()
        done;
        Option.get (Netsim.Budget.spent ()))
  in
  check_int "10 ticks spent" 10 spent;
  (* One past the budget raises with the exact overshoot. *)
  check_bool "11th tick raises" true
    (try
       Netsim.Budget.with_budget ~events:10 (fun () ->
           for _ = 1 to 11 do
             Netsim.Budget.tick ()
           done);
       false
     with Netsim.Budget.Exceeded { spent; budget } -> spent = 11 && budget = 10)

let test_budget_off_is_noop () =
  (* No budget installed: ticking is free and spent is None. *)
  for _ = 1 to 100 do
    Netsim.Budget.tick ()
  done;
  check_bool "no ambient cell" true (Netsim.Budget.spent () = None)

let test_budget_unobserved_masks () =
  let spent =
    Netsim.Budget.with_budget ~events:5 (fun () ->
        Netsim.Budget.tick ();
        (* Masked work can tick arbitrarily without charging the
           caller's budget — the pool uses this around every task. *)
        Netsim.Budget.unobserved (fun () ->
            for _ = 1 to 1000 do
              Netsim.Budget.tick ()
            done);
        Netsim.Budget.tick ();
        Option.get (Netsim.Budget.spent ()))
  in
  check_int "only direct ticks charged" 2 spent

let test_budget_bounds_simulation () =
  (* The simulator's event loop ticks per popped event, so a scenario
     run under a small budget fails at a deterministic event count. *)
  let run () =
    let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
    try
      Netsim.Budget.with_budget ~events:200 (fun () ->
          ignore
            (Harness.Scenario.run_uniform ~seed:3 ~factory:Harness.Ccas.cubic
               ~duration:4.0 spec));
      None
    with Netsim.Budget.Exceeded { spent; budget } -> Some (spent, budget)
  in
  match (run (), run ()) with
  | Some (s1, b1), Some (s2, b2) ->
    check_int "budget as requested" 200 b1;
    check_bool "expiry point bit-reproducible" true (s1 = s2 && b1 = b2)
  | _ -> Alcotest.fail "200-event budget did not bound a 4s scenario"

(* ------------------------------------------------------------------ *)
(* Supervisor.protect *)

let test_protect_ok_passes_value_through () =
  match Exec.Supervisor.protect ~context:"t" (fun ~attempt -> 40 + attempt) with
  | Ok v -> check_int "value" 41 v
  | Error _ -> Alcotest.fail "protected thunk failed"

let test_protect_crash_is_structured () =
  match
    Exec.Supervisor.protect ~context:"boom" (fun ~attempt:_ -> failwith "bang")
  with
  | Ok _ -> Alcotest.fail "expected a failure"
  | Error f ->
    check_string "context" "boom" f.Exec.Supervisor.context;
    check_int "one attempt" 1 f.Exec.Supervisor.attempts;
    check_bool "kind is crash" true (f.Exec.Supervisor.kind = Exec.Supervisor.Crash);
    check_bool "exn text" true
      (String.length f.Exec.Supervisor.exn > 0
      && f.Exec.Supervisor.backoffs = []);
    check_string "trace-event kind" "failure"
      (Exec.Supervisor.kind_name f.Exec.Supervisor.kind)

let test_protect_retries_until_success () =
  let calls = ref 0 in
  match
    Exec.Supervisor.protect ~retries:5 ~context:"flaky" (fun ~attempt ->
        incr calls;
        if attempt < 3 then failwith "not yet";
        attempt)
  with
  | Ok v ->
    check_int "succeeded on third attempt" 3 v;
    check_int "called exactly three times" 3 !calls
  | Error _ -> Alcotest.fail "should have recovered"

let test_protect_deadline_kind () =
  let run () =
    Exec.Supervisor.protect ~deadline_events:10 ~context:"dl" (fun ~attempt:_ ->
        for _ = 1 to 100 do
          Netsim.Budget.tick ()
        done)
  in
  match (run (), run ()) with
  | Error f1, Error f2 ->
    check_bool "deadline kind" true
      (match f1.Exec.Supervisor.kind with
      | Exec.Supervisor.Deadline { spent = 11; budget = 10 } -> true
      | _ -> false);
    check_string "trace-event kind" "deadline"
      (Exec.Supervisor.kind_name f1.Exec.Supervisor.kind);
    check_bool "identical failures" true (f1 = f2);
    check_string "identical digests" (Exec.Supervisor.digest f1)
      (Exec.Supervisor.digest f2)
  | _ -> Alcotest.fail "deadline did not fire"

(* Bit-reproducibility of retried failures: the whole failure record —
   backoff schedule included — is a function of (seed, retries) alone. *)
let test_protect_retry_schedule_reproducible =
  QCheck.Test.make ~count:50 ~name:"protect retry schedule reproducible"
    QCheck.(pair (int_bound 1000) (int_bound 4))
    (fun (seed, retries) ->
      let run () =
        match
          Exec.Supervisor.protect ~retries ~seed ~context:"always"
            (fun ~attempt:_ -> failwith "always fails")
        with
        | Ok _ -> QCheck.Test.fail_report "always-failing thunk returned Ok"
        | Error f -> f
      in
      let f1 = run () and f2 = run () in
      f1 = f2
      && Exec.Supervisor.digest f1 = Exec.Supervisor.digest f2
      && List.length f1.Exec.Supervisor.backoffs = retries
      && f1.Exec.Supervisor.attempts = retries + 1
      && List.for_all (fun b -> b > 0.0) f1.Exec.Supervisor.backoffs)

let test_protect_backoffs_depend_on_seed () =
  let fail_with seed =
    match
      Exec.Supervisor.protect ~retries:3 ~seed ~context:"s" (fun ~attempt:_ ->
          failwith "x")
    with
    | Error f -> f.Exec.Supervisor.backoffs
    | Ok _ -> Alcotest.fail "unexpected success"
  in
  check_bool "different seed, different jitter" true (fail_with 1 <> fail_with 2)

let test_digest_excludes_wall_parameters () =
  (* Two runs killed by the wall backstop at different ceilings must
     not be distinguished by the determinism digest. *)
  let base =
    {
      Exec.Supervisor.context = "w";
      exn = "Netsim.Budget.Wall_exceeded";
      backtrace = "none";
      attempts = 1;
      backoffs = [];
      kind = Exec.Supervisor.Wall { budget_s = 1.0 };
      flight = None;
    }
  in
  let other = { base with kind = Exec.Supervisor.Wall { budget_s = 60.0 } } in
  check_string "wall digest invariant" (Exec.Supervisor.digest base)
    (Exec.Supervisor.digest other);
  check_string "wall maps to deadline" "deadline"
    (Exec.Supervisor.kind_name base.Exec.Supervisor.kind)

let test_render_mentions_digest () =
  match Exec.Supervisor.protect ~context:"r" (fun ~attempt:_ -> failwith "x") with
  | Ok _ -> Alcotest.fail "unexpected success"
  | Error f ->
    let lines = Exec.Supervisor.render f in
    check_int "four report lines" 4 (List.length lines);
    check_bool "digest line present" true
      (List.exists
         (fun l ->
           String.length l >= 7 && String.sub l 0 7 = "digest:")
         lines)

let test_render_includes_flight_line () =
  let f =
    {
      Exec.Supervisor.context = "fl";
      exn = "Failure(\"x\")";
      backtrace = "none";
      attempts = 1;
      backoffs = [];
      kind = Exec.Supervisor.Crash;
      flight = Some ("/tmp/flight-fl.jsonl", 42);
    }
  in
  let lines = Exec.Supervisor.render f in
  check_int "five report lines with a flight dump" 5 (List.length lines);
  check_bool "flight line names the dump and its size" true
    (List.exists
       (fun l -> l = "flight:    /tmp/flight-fl.jsonl (42 event(s))")
       lines);
  (* The dump path is host-chosen, so it must stay out of the
     determinism digest. *)
  check_string "flight out of digest"
    (Exec.Supervisor.digest { f with flight = None })
    (Exec.Supervisor.digest f)

(* A supervised crash under the flight recorder dumps the failing
   lane's ring — and the dump is byte-identical however many domains
   the pool ran the tasks on. *)
let test_flight_dump_pool_identical () =
  let dump_bytes pool_size =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "libra-flight-pool-%d-%d" (Unix.getpid ()) pool_size)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let saved = Obs.Flight.dump_dir () in
    Obs.Flight.set_dump_dir dir;
    Fun.protect
      ~finally:(fun () -> Obs.Flight.set_dump_dir saved)
      (fun () ->
        let pool = Exec.Pool.create ~size:pool_size () in
        Fun.protect
          ~finally:(fun () -> Exec.Pool.shutdown pool)
          (fun () ->
            let fl = Obs.Flight.create ~capacity:64 () in
            ignore
              (Exec.Pool.map pool
                 (fun lane ->
                   Obs.Flight.run fl ~lane (fun () ->
                       for i = 0 to 9 do
                         Obs.Trace.emit
                           (Obs.Event.Enqueue
                              {
                                t = float_of_int i;
                                flow = lane;
                                seq = i;
                                size = 1500;
                                backlog = 1500;
                              })
                       done;
                       if lane = 2 then
                         match
                           Exec.Supervisor.protect ~context:"pool-flight"
                             (fun ~attempt:_ -> failwith "boom")
                         with
                         | Ok () -> Alcotest.fail "crash expected"
                         | Error f ->
                           check_bool "failure report carries the dump" true
                             (match f.Exec.Supervisor.flight with
                             | Some (_, 10) -> true
                             | _ -> false)))
                 (Array.init 6 Fun.id));
            let path = Filename.concat dir "flight-pool-flight.jsonl" in
            let ic = open_in_bin path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            s))
  in
  let a = dump_bytes 1 and b = dump_bytes 4 in
  check_bool "dump non-empty" true (String.length a > 0);
  check_string "flight dump byte-identical at pool 1 vs 4" a b

(* ------------------------------------------------------------------ *)
(* Checkpoint store *)

let temp_store =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "libra-ckpt-%d-%d" (Unix.getpid ()) !n)
    in
    Exec.Checkpoint.create ~dir

let hit = function
  | Exec.Checkpoint.Hit s -> s
  | Exec.Checkpoint.Miss -> Alcotest.fail "expected Hit, got Miss"
  | Exec.Checkpoint.Corrupt { reason; _ } ->
    Alcotest.fail ("expected Hit, got Corrupt: " ^ reason)

let test_checkpoint_round_trip () =
  let store = temp_store () in
  let key = Exec.Checkpoint.key ~parts:[ "fig7"; "quick"; "clean" ] in
  check_bool "absent before save" true
    (Exec.Checkpoint.load store ~key = Exec.Checkpoint.Miss
    && not (Exec.Checkpoint.mem store ~key));
  Exec.Checkpoint.save store ~key "payload-1\nline two";
  check_bool "present after save" true (Exec.Checkpoint.mem store ~key);
  check_string "bytes round-trip" "payload-1\nline two"
    (hit (Exec.Checkpoint.load store ~key));
  (* Overwrite is atomic and last-write-wins. *)
  Exec.Checkpoint.save store ~key "payload-2";
  check_string "overwrite" "payload-2" (hit (Exec.Checkpoint.load store ~key))

let test_checkpoint_key_separates_contexts () =
  let k1 = Exec.Checkpoint.key ~parts:[ "fig7"; "quick" ] in
  let k2 = Exec.Checkpoint.key ~parts:[ "fig7"; "full" ] in
  let k3 = Exec.Checkpoint.key ~parts:[ "fig7"; "quick" ] in
  check_string "key is deterministic" k1 k3;
  check_bool "different context, different cell" true (k1 <> k2)

let test_report_json_round_trip () =
  let r =
    Harness.Report.capture (fun () ->
        Harness.Report.printf "line one\n";
        Harness.Report.printf "value %.3f\n" 1.25;
        Harness.Report.result "alpha" "1";
        Harness.Report.result "beta" "two")
  in
  let blob = Obs.Json.to_compact (Harness.Report.to_json r) in
  match Obs.Json.parse blob with
  | Error m -> Alcotest.fail ("reparse failed: " ^ m)
  | Ok j -> (
    match Harness.Report.of_json j with
    | None -> Alcotest.fail "of_json rejected its own output"
    | Some r' ->
      check_string "text round-trips" (Harness.Report.render r)
        (Harness.Report.render r');
      check_bool "kvs round-trip in order" true
        (Harness.Report.results r = Harness.Report.results r'))

let () =
  Alcotest.run "supervisor"
    [
      ( "budget",
        [
          Alcotest.test_case "counts ticks" `Quick test_budget_counts_ticks;
          Alcotest.test_case "off is noop" `Quick test_budget_off_is_noop;
          Alcotest.test_case "unobserved masks" `Quick test_budget_unobserved_masks;
          Alcotest.test_case "bounds a simulation" `Slow test_budget_bounds_simulation;
        ] );
      ( "protect",
        [
          Alcotest.test_case "ok value" `Quick test_protect_ok_passes_value_through;
          Alcotest.test_case "crash structured" `Quick test_protect_crash_is_structured;
          Alcotest.test_case "retries recover" `Quick test_protect_retries_until_success;
          Alcotest.test_case "deadline kind" `Quick test_protect_deadline_kind;
          QCheck_alcotest.to_alcotest test_protect_retry_schedule_reproducible;
          Alcotest.test_case "seeded jitter" `Quick test_protect_backoffs_depend_on_seed;
          Alcotest.test_case "wall out of digest" `Quick test_digest_excludes_wall_parameters;
          Alcotest.test_case "render" `Quick test_render_mentions_digest;
          Alcotest.test_case "render flight line" `Quick
            test_render_includes_flight_line;
          Alcotest.test_case "flight dump pool 1 vs 4" `Quick
            test_flight_dump_pool_identical;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round trip" `Quick test_checkpoint_round_trip;
          Alcotest.test_case "key contexts" `Quick test_checkpoint_key_separates_contexts;
          Alcotest.test_case "report json" `Quick test_report_json_round_trip;
        ] );
    ]
