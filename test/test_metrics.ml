(* Tests for the metrics library: Jain index, CDFs, the Tab. 5
   convergence detector, safety statistics and the overhead ledger. *)

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Jain *)

let test_jain_equal_allocation () =
  check_float "equal is 1" 1.0 (Metrics.Jain.index [| 5.0; 5.0; 5.0 |])

let test_jain_starved_flow () =
  let j = Metrics.Jain.index [| 10.0; 0.0 |] in
  check_float "one of two starved" 0.5 j

let prop_jain_in_unit_interval =
  QCheck.Test.make ~name:"jain in (0,1]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 10) (float_range 0.0 100.0))
    (fun xs ->
      let j = Metrics.Jain.index (Array.of_list xs) in
      j > 0.0 && j <= 1.0 +. 1e-9)

let prop_jain_maximised_by_fairness =
  QCheck.Test.make ~name:"equal allocation maximises jain" ~count:200
    QCheck.(pair (int_range 2 8) (list_of_size (Gen.int_range 2 8) (float_range 0.1 100.0)))
    (fun (n, xs) ->
      QCheck.assume (List.length xs >= 2);
      let unequal = Metrics.Jain.index (Array.of_list xs) in
      let equal = Metrics.Jain.index (Array.make n 1.0) in
      equal >= unequal -. 1e-9)

let prop_jain_scale_invariant =
  QCheck.Test.make ~name:"jain scale invariant" ~count:200
    QCheck.(pair (float_range 0.1 50.0) (list_of_size (Gen.int_range 1 6) (float_range 0.1 10.0)))
    (fun (k, xs) ->
      let a = Metrics.Jain.index (Array.of_list xs) in
      let b = Metrics.Jain.index (Array.of_list (List.map (fun v -> k *. v) xs)) in
      Float.abs (a -. b) < 1e-9)

(* ------------------------------------------------------------------ *)
(* CDF *)

let test_cdf_quantiles () =
  let cdf = Metrics.Cdf.of_samples [| 3.0; 1.0; 2.0; 5.0; 4.0 |] in
  check_float "min" 1.0 (Metrics.Cdf.min cdf);
  check_float "max" 5.0 (Metrics.Cdf.max cdf);
  check_float "median" 3.0 (Metrics.Cdf.quantile cdf 0.5);
  check_float "mean" 3.0 (Metrics.Cdf.mean cdf);
  check_float "range" 4.0 (Metrics.Cdf.range cdf)

let test_cdf_at () =
  let cdf = Metrics.Cdf.of_samples [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "P[X<=0]" 0.0 (Metrics.Cdf.at cdf 0.0);
  check_float "P[X<=2]" 0.5 (Metrics.Cdf.at cdf 2.0);
  check_float "P[X<=9]" 1.0 (Metrics.Cdf.at cdf 9.0)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf monotone nondecreasing" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-50.0) 50.0))
    (fun xs ->
      let cdf = Metrics.Cdf.of_samples (Array.of_list xs) in
      let ok = ref true in
      let prev = ref 0.0 in
      for i = -50 to 50 do
        let p = Metrics.Cdf.at cdf (float_of_int i) in
        if p < !prev then ok := false;
        prev := p
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Convergence *)

let series_of_list step xs =
  Array.of_list (List.mapi (fun i v -> (float_of_int i *. step, v)) xs)

let test_convergence_detects_stable_plateau () =
  (* Ramps for 2 s, then flat at 10 for 8 s (0.5 s bins). *)
  let values = List.init 20 (fun i -> if i < 4 then float_of_int i else 10.0) in
  let series = series_of_list 0.5 values in
  let r = Metrics.Convergence.analyse ~window:3.0 ~entry:0.0 series in
  (match r.Metrics.Convergence.conv_time with
  | Some t -> check_bool "converged at plateau start" true (t >= 1.5 && t <= 2.5)
  | None -> Alcotest.fail "should converge");
  check_float "flat stability" 0.0 r.Metrics.Convergence.stability;
  check_float "avg" 10.0 r.Metrics.Convergence.avg_throughput

let test_convergence_rejects_oscillation () =
  let values = List.init 40 (fun i -> if i mod 2 = 0 then 2.0 else 20.0) in
  let series = series_of_list 0.5 values in
  let r = Metrics.Convergence.analyse ~window:5.0 ~entry:0.0 series in
  check_bool "never stable" true (r.Metrics.Convergence.conv_time = None)

let test_convergence_respects_entry_time () =
  let values = List.init 20 (fun _ -> 10.0) in
  let series = series_of_list 0.5 values in
  let r = Metrics.Convergence.analyse ~window:3.0 ~entry:5.0 series in
  match r.Metrics.Convergence.conv_time with
  | Some t -> check_bool "measured from entry" true (t < 0.6)
  | None -> Alcotest.fail "should converge"

(* ------------------------------------------------------------------ *)
(* Safety *)

let test_safety_statistics () =
  let s = Metrics.Safety.of_trials [| 0.8; 0.9; 1.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 0.9 s.Metrics.Safety.mean;
  Alcotest.(check (float 1e-9)) "range" (0.2 -. 0.0) s.Metrics.Safety.range;
  check_bool "stddev" true (Float.abs (s.Metrics.Safety.stddev -. 0.0816) < 1e-3);
  Alcotest.(check int) "trials" 3 s.Metrics.Safety.trials

(* ------------------------------------------------------------------ *)
(* Overhead ledger *)

let test_overhead_counts_callbacks_and_forwards () =
  let ledger = Metrics.Overhead.create () in
  let nn =
    Rlcc.Nn.create { Rlcc.Nn.input = 2; hidden = [ 4 ]; output = 1; hidden_act = Rlcc.Nn.Tanh }
  in
  let cca =
    {
      Netsim.Cca.name = "probe";
      on_ack = (fun _ -> ignore (Rlcc.Nn.forward nn [| 0.0; 1.0 |]));
      on_loss = (fun _ -> ());
      on_send = (fun _ -> ());
      pacing_rate = (fun ~now:_ -> 1e6);
      cwnd = (fun ~now:_ -> 10.0);
    }
  in
  let wrapped = Metrics.Overhead.wrap ledger cca in
  let ack =
    { Netsim.Cca.now = 0.0; seq = 0; rtt = 0.05; acked_bytes = 1500; inflight = 1;
      delivered_bytes = 0; rate_sample = 0.0; newly_lost = 0 }
  in
  for _ = 1 to 5 do
    wrapped.Netsim.Cca.on_ack ack
  done;
  let report = Metrics.Overhead.report ledger ~sim_seconds:5.0 in
  Alcotest.(check (float 1e-9)) "one forward per ack" 1.0
    report.Metrics.Overhead.forwards_per_sim_s;
  Alcotest.(check int) "callbacks counted" 5 ledger.Metrics.Overhead.callbacks;
  check_bool "cpu priced" true (report.Metrics.Overhead.cpu_per_sim_s > 0.0)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "metrics"
    [
      ( "jain",
        [
          Alcotest.test_case "equal" `Quick test_jain_equal_allocation;
          Alcotest.test_case "starved" `Quick test_jain_starved_flow;
        ]
        @ qsuite
            [ prop_jain_in_unit_interval; prop_jain_maximised_by_fairness; prop_jain_scale_invariant ] );
      ( "cdf",
        [
          Alcotest.test_case "quantiles" `Quick test_cdf_quantiles;
          Alcotest.test_case "at" `Quick test_cdf_at;
        ]
        @ qsuite [ prop_cdf_monotone ] );
      ( "convergence",
        [
          Alcotest.test_case "plateau" `Quick test_convergence_detects_stable_plateau;
          Alcotest.test_case "oscillation" `Quick test_convergence_rejects_oscillation;
          Alcotest.test_case "entry time" `Quick test_convergence_respects_entry_time;
        ] );
      ("safety", [ Alcotest.test_case "statistics" `Quick test_safety_statistics ]);
      ( "overhead",
        [ Alcotest.test_case "ledger" `Quick test_overhead_counts_callbacks_and_forwards ] );
    ]
