(* Tests for lib/obs: trace sessions (lanes, rings, filters, exports),
   the metrics registry (merge rules, no-op discipline) and the mini
   JSON parser the exporters are validated with. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ev ~t ~seq =
  Obs.Event.Enqueue { t; flow = 0; seq; size = 1500; backlog = 1500 }

(* ------------------------------------------------------------------ *)
(* Trace sessions *)

let test_trace_records_in_order () =
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      for i = 0 to 9 do
        Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:i)
      done);
  check_int "all recorded" 10 (Obs.Trace.length tr);
  check_int "none dropped" 0 (Obs.Trace.dropped tr);
  let times = List.map Obs.Event.time (Obs.Trace.events tr) in
  check_bool "in emission order" true
    (times = List.init 10 float_of_int)

let test_trace_off_outside_run () =
  check_bool "no tracer installed" false (Obs.Trace.on Obs.Category.Pkt);
  (* Emitting without a tracer is a silent no-op. *)
  Obs.Trace.emit (ev ~t:0.0 ~seq:0);
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      check_bool "on inside run" true (Obs.Trace.on Obs.Category.Pkt));
  check_bool "off again after run" false (Obs.Trace.on Obs.Category.Pkt)

let test_trace_category_filter () =
  let tr = Obs.Trace.create ~categories:[ Obs.Category.Stage ] () in
  Obs.Trace.run tr (fun () ->
      check_bool "subscribed category on" true (Obs.Trace.on Obs.Category.Stage);
      check_bool "unsubscribed category off" false (Obs.Trace.on Obs.Category.Pkt);
      Obs.Trace.emit (ev ~t:0.0 ~seq:0);
      Obs.Trace.emit (Obs.Event.Stage { t = 1.0; stage = "exploration"; base_rate = 1e6 }));
  check_int "only stage recorded" 1 (Obs.Trace.length tr)

(* Run boundaries are structural: they survive any category filter,
   because consumers need them to segment lanes whose sim clock
   restarts (a lane that runs several simulations back-to-back). *)
let test_run_boundary_survives_filter () =
  let tr = Obs.Trace.create ~categories:[ Obs.Category.Stage ] () in
  Obs.Trace.run tr (fun () ->
      check_bool "run category on despite filter" true
        (Obs.Trace.on Obs.Category.Run);
      Obs.Trace.emit (Obs.Event.Run_start { t = 0.0; label = "sim" });
      Obs.Trace.emit (Obs.Event.Stage { t = 1.0; stage = "exploration"; base_rate = 1e6 }));
  check_int "boundary + stage recorded" 2 (Obs.Trace.length tr);
  check_bool "boundary serializes" true
    (match Obs.Trace.events tr with
    | Obs.Event.Run_start { label = "sim"; _ } :: _ -> true
    | _ -> false)

let test_category_parse_filter () =
  check_bool "parses a list" true
    (Obs.Category.parse_filter "pkt, STAGE,rl"
    = [ Obs.Category.Pkt; Obs.Category.Stage; Obs.Category.Rl ]);
  check_bool "rejects unknown" true
    (try
       ignore (Obs.Category.parse_filter "pkt,nope");
       false
     with Invalid_argument _ -> true);
  (* every category round-trips through its name *)
  check_bool "names roundtrip" true
    (List.for_all
       (fun c -> Obs.Category.of_string (Obs.Category.to_string c) = Some c)
       Obs.Category.all)

let test_trace_ring_overwrites_oldest () =
  let tr = Obs.Trace.create ~ring_capacity:4 () in
  Obs.Trace.run tr (fun () ->
      for i = 0 to 9 do
        Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:i)
      done);
  check_int "capped at capacity" 4 (Obs.Trace.length tr);
  check_int "dropped count" 6 (Obs.Trace.dropped tr);
  let times = List.map Obs.Event.time (Obs.Trace.events tr) in
  check_bool "keeps the newest" true (times = [ 6.0; 7.0; 8.0; 9.0 ])

let test_trace_lane_merge_order () =
  let tr = Obs.Trace.create () in
  (* Register lanes out of order: merge must sort by lane id, not by
     registration (or scheduling) order. *)
  Obs.Trace.run tr ~lane:2 (fun () -> Obs.Trace.emit (ev ~t:9.0 ~seq:2));
  Obs.Trace.run tr ~lane:0 (fun () -> Obs.Trace.emit (ev ~t:5.0 ~seq:0));
  Obs.Trace.run tr ~lane:1 (fun () -> Obs.Trace.emit (ev ~t:7.0 ~seq:1));
  let seqs =
    List.map
      (function Obs.Event.Enqueue e -> e.seq | _ -> -1)
      (Obs.Trace.events tr)
  in
  check_bool "ascending lane order" true (seqs = [ 0; 1; 2 ])

let test_trace_nested_run_restores_outer () =
  let outer = Obs.Trace.create () in
  let inner = Obs.Trace.create () in
  Obs.Trace.run outer (fun () ->
      Obs.Trace.emit (ev ~t:0.0 ~seq:0);
      Obs.Trace.run inner (fun () -> Obs.Trace.emit (ev ~t:1.0 ~seq:1));
      Obs.Trace.emit (ev ~t:2.0 ~seq:2));
  check_int "outer got its two" 2 (Obs.Trace.length outer);
  check_int "inner got the nested one" 1 (Obs.Trace.length inner)

let test_trace_unobserved_masks () =
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      Obs.Trace.emit (ev ~t:0.0 ~seq:0);
      Obs.Trace.unobserved (fun () ->
          check_bool "off inside unobserved" false (Obs.Trace.on Obs.Category.Pkt);
          Obs.Trace.emit (ev ~t:1.0 ~seq:1));
      Obs.Trace.emit (ev ~t:2.0 ~seq:2));
  check_int "masked event not recorded" 2 (Obs.Trace.length tr)

(* Concurrent lanes: events land in the lane of the emitting task, and
   the export is identical however the tasks were scheduled. *)
let test_trace_parallel_lanes_deterministic () =
  let export pool_size =
    let pool = Exec.Pool.create ~size:pool_size () in
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () ->
        let tr = Obs.Trace.create () in
        ignore
          (Exec.Pool.map pool
             (fun lane ->
               Obs.Trace.run tr ~lane (fun () ->
                   for i = 0 to 99 do
                     Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:((1000 * lane) + i))
                   done))
             (Array.init 6 Fun.id));
        Obs.Trace.to_jsonl tr)
  in
  check_string "jsonl identical at pool sizes 1 and 4" (export 1) (export 4)

(* ------------------------------------------------------------------ *)
(* Exports *)

let test_jsonl_lines_parse_and_roundtrip () =
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      Obs.Trace.emit (ev ~t:0.25 ~seq:3);
      Obs.Trace.emit
        (Obs.Event.Cycle
           { t = 1.5; chosen = "skip"; u_prev = nan; u_rl = nan; u_cl = nan; x_next = 2e6 });
      Obs.Trace.emit
        (Obs.Event.Rl_step
           { t = 2.0; episode = -1; step = 7; rate = 1.25e6; reward = nan; action = -0.5 }));
  let all_lines =
    String.split_on_char '\n' (Obs.Trace.to_jsonl tr)
    |> List.filter (fun l -> l <> "")
  in
  check_int "manifest header + three events" 4 (List.length all_lines);
  (* The first line is the provenance manifest, and it validates. *)
  (match Obs.Json.parse (List.hd all_lines) with
  | Error msg -> Alcotest.failf "manifest line does not parse: %s" msg
  | Ok m ->
    check_bool "manifest key present" true (Obs.Json.member "manifest" m <> None);
    (match Obs.Manifest.validate m with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "manifest invalid: %s" msg));
  let lines = List.tl all_lines in
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Error msg -> Alcotest.failf "line %S does not parse: %s" line msg
      | Ok v ->
        check_bool "has t" true (Obs.Json.member "t" v <> None);
        check_bool "has ev" true
          (Option.bind (Obs.Json.member "ev" v) Obs.Json.str <> None))
    lines;
  (* Non-finite floats export as null. *)
  let skip_line = List.nth lines 1 in
  (match Obs.Json.parse skip_line with
  | Ok v ->
    check_bool "nan is null" true (Obs.Json.member "u_prev" v = Some Obs.Json.Null)
  | Error _ -> Alcotest.fail "skip line unparseable");
  (* CSV: header plus one row per event, fixed column count. *)
  let csv = Obs.Trace.to_csv tr in
  let rows = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check_int "header + 3 rows" 4 (List.length rows);
  List.iter
    (fun row ->
      check_int "fixed column count" Obs.Event.csv_columns
        (List.length (String.split_on_char ',' row)))
    rows

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counters_and_gauges () =
  let c = Obs.Metrics.counter "test.counter" in
  let g = Obs.Metrics.gauge "test.gauge" in
  let reg = Obs.Metrics.create_registry () in
  (* No registry installed: updates are dropped. *)
  Obs.Metrics.incr c;
  Obs.Metrics.run reg (fun () ->
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Obs.Metrics.set g 2.5);
  Obs.Metrics.incr c;
  let rows = Obs.Metrics.dump reg in
  check_bool "counter is 5" true
    (List.mem ("test.counter", "counter", "count", "5") rows);
  check_bool "gauge is 2.5" true
    (List.mem ("test.gauge", "gauge", "value", "2.5") rows)

let test_metrics_histogram_buckets () =
  let h = Obs.Metrics.histogram "test.hist" ~bounds:[| 1.0; 10.0 |] in
  let reg = Obs.Metrics.create_registry () in
  Obs.Metrics.run reg (fun () ->
      List.iter (Obs.Metrics.observe h) [ 0.5; 0.9; 5.0; 50.0 ]);
  let rows = Obs.Metrics.dump reg in
  check_bool "le_1 = 2" true (List.mem ("test.hist", "histogram", "le_1", "2") rows);
  check_bool "le_10 = 1" true (List.mem ("test.hist", "histogram", "le_10", "1") rows);
  check_bool "overflow = 1" true (List.mem ("test.hist", "histogram", "le_inf", "1") rows);
  check_bool "count = 4" true (List.mem ("test.hist", "histogram", "count", "4") rows)

let test_metrics_merge_rules () =
  let c = Obs.Metrics.counter "test.merge.counter" in
  let g = Obs.Metrics.gauge "test.merge.gauge" in
  let a = Obs.Metrics.create_registry () in
  let b = Obs.Metrics.create_registry () in
  Obs.Metrics.run a (fun () ->
      Obs.Metrics.add c 3;
      Obs.Metrics.set g 1.0);
  Obs.Metrics.run b (fun () -> Obs.Metrics.add c 4);
  let merged = Obs.Metrics.create_registry () in
  Obs.Metrics.merge ~into:merged a;
  Obs.Metrics.merge ~into:merged b;
  let rows = Obs.Metrics.dump merged in
  check_bool "counters add" true
    (List.mem ("test.merge.counter", "counter", "count", "7") rows);
  (* b never wrote the gauge, so a's write survives the later merge. *)
  check_bool "unwritten gauge does not overwrite" true
    (List.mem ("test.merge.gauge", "gauge", "value", "1") rows)

let test_metrics_reregistration () =
  let a = Obs.Metrics.counter "test.rereg" in
  let b = Obs.Metrics.counter "test.rereg" in
  check_bool "same probe" true (a = b);
  check_bool "kind mismatch rejected" true
    (try
       ignore (Obs.Metrics.gauge "test.rereg");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mini JSON *)

let test_json_roundtrip () =
  let src = {|{"a": 1.5, "b": [true, null, "x\ny"], "c": {"d": -2e3}}|} in
  match Obs.Json.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok v ->
    check_bool "a" true (Option.bind (Obs.Json.member "a" v) Obs.Json.num = Some 1.5);
    (* Printing then reparsing yields the same tree. *)
    (match Obs.Json.parse (Obs.Json.to_string v) with
    | Ok v2 -> check_bool "roundtrip" true (v = v2)
    | Error msg -> Alcotest.failf "reparse failed: %s" msg)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "rejects %S" s) true
        (match Obs.Json.parse s with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "nul"; "{\"a\":1} trailing" ]

let test_json_set_member () =
  let v = Obs.Json.Obj [ ("a", Obs.Json.Num 1.0) ] in
  let v = Obs.Json.set_member "b" (Obs.Json.Num 2.0) v in
  let v = Obs.Json.set_member "a" (Obs.Json.Num 9.0) v in
  check_bool "replaced" true (Option.bind (Obs.Json.member "a" v) Obs.Json.num = Some 9.0);
  check_bool "appended" true (Option.bind (Obs.Json.member "b" v) Obs.Json.num = Some 2.0)

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_disabled_noop () =
  check_bool "disabled outside run" false (Obs.Span.enabled ());
  let p = Obs.Span.probe "t.span.noop" in
  (* Without a recorder, timed is transparent: value through, nothing
     recorded anywhere. *)
  check_int "value passes through" 41 (Obs.Span.timed p (fun () -> 41));
  check_bool "still disabled" false (Obs.Span.enabled ())

let test_span_nesting_structure () =
  let a = Obs.Span.probe "t.span.a" in
  let b = Obs.Span.probe "t.span.b" in
  let t = Obs.Span.create () in
  Obs.Span.run t ~lane:0 (fun () ->
      check_bool "enabled inside run" true (Obs.Span.enabled ());
      Obs.Span.timed a (fun () ->
          Obs.Span.timed b Fun.id;
          Obs.Span.timed b Fun.id));
  check_string "calling-context digest"
    "lane 0\n  t.span.a x1\n    t.span.b x2\n" (Obs.Span.structure t)

let test_span_exception_safety () =
  let a = Obs.Span.probe "t.span.raise" in
  let t = Obs.Span.create () in
  (try
     Obs.Span.run t ~lane:0 (fun () ->
         Obs.Span.timed a (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* The span closed on the way out, and the recorder uninstalled. *)
  check_string "span recorded despite raise" "lane 0\n  t.span.raise x1\n"
    (Obs.Span.structure t);
  check_bool "disabled again after raising run" false (Obs.Span.enabled ())

let test_span_unobserved_masks () =
  let a = Obs.Span.probe "t.span.outer" in
  let b = Obs.Span.probe "t.span.masked" in
  let t = Obs.Span.create () in
  Obs.Span.run t ~lane:0 (fun () ->
      Obs.Span.timed a (fun () ->
          Obs.Span.unobserved (fun () ->
              check_bool "disabled inside unobserved" false (Obs.Span.enabled ());
              Obs.Span.timed b Fun.id)));
  check_string "masked span dropped, outer kept"
    "lane 0\n  t.span.outer x1\n" (Obs.Span.structure t)

let test_span_lane_merge_and_sort () =
  let a = Obs.Span.probe "t.span.lane" in
  let t = Obs.Span.create () in
  (* Lanes registered out of order, lane 0 twice: export sorts by lane
     id and merges same-lane contexts by call path. *)
  Obs.Span.run t ~lane:2 (fun () -> Obs.Span.timed a Fun.id);
  Obs.Span.run t ~lane:0 (fun () -> Obs.Span.timed a Fun.id);
  Obs.Span.run t ~lane:0 (fun () -> Obs.Span.timed a Fun.id);
  check_string "sorted + merged"
    "lane 0\n  t.span.lane x2\nlane 2\n  t.span.lane x1\n"
    (Obs.Span.structure t);
  check_bool "two exported lanes" true
    (List.map fst (Obs.Span.lanes_json t) = [ 0; 2 ])

let test_span_json_sanity () =
  let a = Obs.Span.probe "t.span.json.a" in
  let b = Obs.Span.probe "t.span.json.b" in
  let t = Obs.Span.create () in
  Obs.Span.run t ~lane:0 (fun () ->
      Obs.Span.timed a (fun () ->
          Obs.Span.timed b (fun () ->
              ignore (Sys.opaque_identity (List.init 1000 Fun.id)))));
  let num k n = Option.value ~default:nan (Option.bind (Obs.Json.member k n) Obs.Json.num) in
  match Obs.Span.lanes_json t with
  | [ (0, Obs.Json.List [ root ]) ] ->
    check_bool "named" true
      (Option.bind (Obs.Json.member "name" root) Obs.Json.str = Some "t.span.json.a");
    let total = num "total_s" root and self = num "self_s" root in
    check_bool "total >= self >= 0" true (total >= self && self >= 0.0);
    (match Obs.Json.member "children" root with
    | Some (Obs.Json.List [ kid ]) ->
      check_bool "child named" true
        (Option.bind (Obs.Json.member "name" kid) Obs.Json.str = Some "t.span.json.b");
      check_bool "child inside parent" true (num "total_s" kid <= total);
      check_bool "allocation attributed" true
        (num "minor_words" kid +. num "major_words" kid > 0.0)
    | _ -> Alcotest.fail "expected exactly one child")
  | _ -> Alcotest.fail "expected a single lane with a single root"

(* End-to-end attribution: running a real scenario under a recorder,
   the named top-level spans must cover nearly all of the measured wall
   time (the >= 90% acceptance threshold, with margin for test noise). *)
let test_span_attribution () =
  let t = Obs.Span.create () in
  let wall0 = Unix.gettimeofday () in
  let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
  ignore
    (Obs.Span.run t ~lane:0 (fun () ->
         Harness.Scenario.run_uniform ~seed:11 ~factory:Harness.Ccas.cubic
           ~duration:10.0 spec));
  let wall = Unix.gettimeofday () -. wall0 in
  check_bool "netsim.run span present" true
    (let s = Obs.Span.structure t in
     let contains sub =
       let n = String.length sub and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains "netsim.run" && contains "heap.push");
  match Obs.Span.lanes_json t with
  | [ (0, spans) ] ->
    let frac = Obs.Perf.attributed_fraction ~spans ~wall in
    check_bool
      (Printf.sprintf "top-level spans cover >= 90%% of wall (got %.1f%%)"
         (100.0 *. frac))
      true
      (frac >= 0.9 && frac <= 1.5)
  | _ -> Alcotest.fail "expected one lane"

(* ------------------------------------------------------------------ *)
(* Manifests *)

let test_manifest_validates () =
  let m = Obs.Manifest.make ~seeds:[ 1; 2 ] ~scale:"quick" ~domains:4 () in
  (match Obs.Manifest.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh manifest rejected: %s" e);
  check_bool "header is one line" true
    (not (String.contains (Obs.Manifest.header_line m) '\n'))

let test_manifest_rejects_bad_sha () =
  let m = Obs.Manifest.make () in
  let bad = Obs.Json.set_member "git_sha" (Obs.Json.Str "NOT-HEX!") m in
  check_bool "garbage sha rejected" true
    (match Obs.Manifest.validate bad with Error _ -> true | Ok () -> false);
  (* "unknown" is the sanctioned no-git fallback. *)
  let unknown = Obs.Json.set_member "git_sha" (Obs.Json.Str "unknown") m in
  check_bool "unknown sha accepted" true
    (match Obs.Manifest.validate unknown with Ok () -> true | Error _ -> false)

let test_manifest_rejects_missing_key () =
  match Obs.Manifest.make () with
  | Obs.Json.Obj kvs ->
    let without = Obs.Json.Obj (List.remove_assoc "scale" kvs) in
    check_bool "missing scale rejected" true
      (match Obs.Manifest.validate without with Error _ -> true | Ok () -> false)
  | _ -> Alcotest.fail "manifest is not an object"

(* ------------------------------------------------------------------ *)
(* Histogram quantiles *)

let q_probe = Obs.Metrics.histogram "test.quantile" ~bounds:[| 1.0; 5.0; 10.0 |]

let test_quantile_empty () =
  let reg = Obs.Metrics.create_registry () in
  List.iter
    (fun q ->
      check_bool
        (Printf.sprintf "empty histogram -> None at q=%g" q)
        true
        (Obs.Metrics.quantile reg q_probe q = None))
    [ 0.0; 0.5; 1.0 ];
  (* Non-histogram probes have no quantiles either. *)
  let c = Obs.Metrics.counter "test.quantile.counter" in
  Obs.Metrics.run reg (fun () -> Obs.Metrics.incr c);
  check_bool "counter -> None" true (Obs.Metrics.quantile reg c 0.5 = None)

let test_quantile_single_sample () =
  let reg = Obs.Metrics.create_registry () in
  Obs.Metrics.run reg (fun () -> Obs.Metrics.observe q_probe 3.0);
  (* One sample in the (1, 5] bucket: every q reports that bucket's
     upper bound — constant, hence trivially monotone. *)
  List.iter
    (fun q ->
      check_bool
        (Printf.sprintf "single sample -> bucket upper bound at q=%g" q)
        true
        (Obs.Metrics.quantile reg q_probe q = Some 5.0))
    [ 0.0; 0.5; 1.0 ]

let quantile_monotone_prop =
  QCheck.Test.make ~count:200 ~name:"quantile monotone in q"
    QCheck.(small_list (float_range 0.0 100.0))
    (fun samples ->
      let reg = Obs.Metrics.create_registry () in
      Obs.Metrics.run reg (fun () ->
          List.iter (Obs.Metrics.observe q_probe) samples);
      let qs = List.init 11 (fun i -> float_of_int i /. 10.0) in
      let vals = List.map (Obs.Metrics.quantile reg q_probe) qs in
      match samples with
      | [] -> List.for_all (( = ) None) vals
      | _ ->
        let rec monotone = function
          | Some a :: (Some b :: _ as rest) -> a <= b && monotone rest
          | [ Some _ ] -> true
          | _ -> false
        in
        monotone vals)

(* ------------------------------------------------------------------ *)
(* Perf history: baseline choice and the regression gate, on a
   synthetic two-run fixture (fig1 regresses 50%, fig2 is flat). *)

let perf_fixture =
  String.concat "\n"
    [
      {|{"manifest":{"manifest":1},"scale":"quick","domains":1,"subset":"all","experiments":{"fig1":1.0,"fig2":2.0},"total_wall_s":3.0,"spans":null}|};
      {|{"manifest":{"manifest":1},"scale":"full","domains":1,"subset":"all","experiments":{"fig1":9.0,"fig2":9.0},"total_wall_s":18.0,"spans":null}|};
      {|{"manifest":{"manifest":1},"scale":"quick","domains":1,"subset":"all","experiments":{"fig1":1.5,"fig2":2.0},"total_wall_s":3.5,"spans":null}|};
    ]

let test_perf_gate_fixture () =
  match Obs.Perf.parse_history perf_fixture with
  | Error e -> Alcotest.failf "fixture does not parse: %s" e
  | Ok entries ->
    check_int "three entries" 3 (List.length entries);
    let candidate = List.nth entries 2 in
    (match Obs.Perf.find_baseline entries ~candidate with
    | None -> Alcotest.fail "no baseline found"
    | Some baseline ->
      (* The full-scale entry in between must be skipped: baselines
         only compare like scale with like. *)
      check_int "baseline skips the full-scale entry" 0 baseline.Obs.Perf.index;
      let deltas = Obs.Perf.compare_entries ~baseline ~candidate in
      check_int "both shared experiments compared" 2 (List.length deltas);
      let flagged threshold =
        List.map
          (fun d -> d.Obs.Perf.group)
          (Obs.Perf.regressions ~threshold_pct:threshold deltas)
      in
      check_bool "gate 20 flags the 50% regression" true (flagged 20.0 = [ "fig1" ]);
      check_bool "gate 60 passes" true (flagged 60.0 = []));
    (* Trend quantiles over the history exercise the 1-2 sample
       quantile edge cases without crashing. *)
    let trend = Obs.Perf.trend entries in
    check_int "trend covers both experiments" 2 (List.length trend)

let test_perf_gate_empty_and_garbage () =
  (match Obs.Perf.parse_history "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty history should have no entries"
  | Error e -> Alcotest.failf "empty history should parse: %s" e);
  check_bool "garbage line reported with its entry number" true
    (match Obs.Perf.parse_history "{\"ok\":1}\nnot json" with
    | Error e -> String.length e > 0
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* Deterministic flow sampling *)

let test_sample_parse_and_render () =
  (match Obs.Sample.parse "1/8" with
  | Ok s ->
    check_int "denominator" 8 (Obs.Sample.denominator s);
    check_string "renders 1/N" "1/8" (Obs.Sample.to_string s)
  | Error e -> Alcotest.failf "\"1/8\" rejected: %s" e);
  (match Obs.Sample.parse "16" with
  | Ok s -> check_int "bare N accepted" 16 (Obs.Sample.denominator s)
  | Error e -> Alcotest.failf "\"16\" rejected: %s" e);
  List.iter
    (fun bad ->
      check_bool (Printf.sprintf "rejects %S" bad) true
        (match Obs.Sample.parse bad with Error _ -> true | Ok _ -> false))
    [ ""; "0"; "1/0"; "-3"; "2/4"; "x"; "1/" ]

let test_sample_deterministic_and_unbiased () =
  let s = Obs.Sample.create ~seed:7 8 in
  let s' = Obs.Sample.create ~seed:7 8 in
  let kept =
    List.filter (fun f -> Obs.Sample.keep s ~flow:f) (List.init 4096 Fun.id)
  in
  check_bool "pure function of (seed, flow)" true
    (List.for_all (fun f -> Obs.Sample.keep s' ~flow:f) kept);
  (* Keep count within ~4 sigma of 4096/8 = 512 (sigma ~ 21). *)
  let n = List.length kept in
  check_bool (Printf.sprintf "fraction near 1/8 (kept %d/4096)" n) true
    (n > 512 - 90 && n < 512 + 90);
  (* A different seed keeps a different flow set. *)
  let s2 = Obs.Sample.create ~seed:8 8 in
  check_bool "seed changes the kept set" true
    (List.exists (fun f -> not (Obs.Sample.keep s2 ~flow:f)) kept);
  (* Structural (negative-flow) events and 1/1 sampling always keep. *)
  check_bool "flow-less always kept" true (Obs.Sample.keep s ~flow:(-1));
  let all = Obs.Sample.create 1 in
  check_bool "1/1 keeps everything" true
    (List.for_all (fun f -> Obs.Sample.keep all ~flow:f) (List.init 100 Fun.id))

(* 64 slots of flow-scoped events over 32 flows, each followed by a
   flow-less structural event — the skeleton sampling must preserve. *)
let mixed_events =
  List.concat_map
    (fun i ->
      let t = 0.01 *. float_of_int i in
      let flow = i mod 32 in
      [
        Obs.Event.Enqueue { t; flow; seq = i; size = 1500; backlog = 1500 };
        Obs.Event.Ack { t; flow; seq = i; rtt = 0.05; newly_lost = 0 };
        Obs.Event.Link_rate { t; rate = 3e6 };
      ])
    (List.init 64 Fun.id)

(* The exported sampled trace must equal an offline [Sample.keep]
   filter of the full trace: the head-based decision at the probe site
   and a post-hoc filter over the unsampled export agree exactly. *)
let test_sampled_trace_equals_offline_filter () =
  let s = Obs.Sample.create ~seed:11 4 in
  let run sample =
    let tr = Obs.Trace.create ?sample () in
    Obs.Trace.run tr (fun () ->
        (* Probe guard agrees with the pure decision at every site. *)
        List.iter
          (fun ev ->
            let flow = Obs.Event.flow_id ev in
            check_bool "on_flow mirrors Sample.keep"
              (match sample with
              | Some s -> Obs.Sample.keep s ~flow
              | None -> true)
              (Obs.Trace.on_flow (Obs.Event.category ev) ~flow);
            Obs.Trace.emit ev)
          mixed_events);
    tr
  in
  let sampled = run (Some s) and full = run None in
  let expected =
    List.filter
      (fun ev -> Obs.Sample.keep s ~flow:(Obs.Event.flow_id ev))
      (Obs.Trace.events full)
  in
  check_bool "some flows dropped" true
    (Obs.Trace.length sampled < Obs.Trace.length full);
  check_int "flow-less events all kept" 64
    (List.length
       (List.filter (fun ev -> Obs.Event.flow_id ev < 0) (Obs.Trace.events sampled)));
  check_bool "sampled trace = offline filter of the full trace" true
    (Obs.Trace.events sampled = expected);
  check_string "csv bytes agree with the filtered event set"
    (Obs.Trace.to_csv sampled)
    (let tr = Obs.Trace.create () in
     Obs.Trace.run tr (fun () -> List.iter Obs.Trace.emit expected);
     Obs.Trace.to_csv tr)

(* ------------------------------------------------------------------ *)
(* Windowed rollups *)

let test_rollup_windows_and_fields () =
  let r = Obs.Rollup.create ~window:1.0 () in
  List.iter (Obs.Rollup.observe r)
    [
      Obs.Event.Enqueue { t = 0.2; flow = 0; seq = 0; size = 1500; backlog = 3000 };
      Obs.Event.Dequeue { t = 0.5; flow = 0; seq = 0; size = 1500; backlog = 1500 };
      Obs.Event.Drop { t = 1.2; flow = 0; seq = 1; size = 1500; reason = Obs.Event.Tail };
      Obs.Event.Ack { t = 2.5; flow = 0; seq = 0; rtt = 0.05; newly_lost = 2 };
    ];
  Obs.Rollup.flush r;
  check_int "three completed windows" 3 (Obs.Rollup.windows r);
  match Obs.Rollup.rows r with
  | [ w0; w1; w2 ] ->
    check_int "w0 index" 0 w0.Obs.Rollup.window;
    check_bool "w0 bounds" true (w0.Obs.Rollup.t0 = 0.0 && w0.Obs.Rollup.t1 = 1.0);
    check_int "w0 events" 2 w0.Obs.Rollup.events;
    check_int "w0 enqueues" 1 w0.Obs.Rollup.enq;
    check_int "w0 delivered bytes" 1500 w0.Obs.Rollup.delivered;
    check_int "w0 q_min" 1500 w0.Obs.Rollup.q_min;
    check_int "w0 q_max" 3000 w0.Obs.Rollup.q_max;
    check_bool "w0 q_mean" true (w0.Obs.Rollup.q_mean = 2250.0);
    check_bool "w0 rate_mean nan (no sample)" true
      (Float.is_nan w0.Obs.Rollup.rate_mean);
    check_int "w1 index" 1 w1.Obs.Rollup.window;
    check_int "w1 drops" 1 w1.Obs.Rollup.drops;
    check_int "w1 q samples absent -> 0" 0 w1.Obs.Rollup.q_max;
    check_int "w2 index" 2 w2.Obs.Rollup.window;
    check_int "w2 acks" 1 w2.Obs.Rollup.acks;
    check_int "w2 lost" 2 w2.Obs.Rollup.lost
  | rows -> Alcotest.failf "expected three rows, got %d" (List.length rows)

let test_rollup_run_start_segments () =
  let enq t =
    Obs.Event.Enqueue { t; flow = 0; seq = 0; size = 100; backlog = 100 }
  in
  let r = Obs.Rollup.create ~window:1.0 () in
  List.iter (Obs.Rollup.observe r)
    [
      Obs.Event.Run_start { t = 0.0; label = "a" };
      enq 0.5;
      enq 2.5;
      (* clock restarts: window indexing must too *)
      Obs.Event.Run_start { t = 0.0; label = "b" };
      enq 0.25;
    ];
  Obs.Rollup.flush r;
  match Obs.Rollup.rows r with
  | [ a0; a2; b0 ] ->
    check_bool "first run is 0" true
      (a0.Obs.Rollup.run = 0 && a0.Obs.Rollup.window = 0);
    check_bool "second window of run 0" true
      (a2.Obs.Rollup.run = 0 && a2.Obs.Rollup.window = 2);
    check_bool "run counter advances, windows restart" true
      (b0.Obs.Rollup.run = 1 && b0.Obs.Rollup.window = 0)
  | rows -> Alcotest.failf "expected three rows, got %d" (List.length rows)

(* Deterministic synthetic event mix for the online/offline property:
   every rollup-relevant variant, some with non-finite payloads. *)
let rollup_event i t =
  let flow = i mod 3 in
  match i mod 8 with
  | 0 -> Obs.Event.Enqueue { t; flow; seq = i; size = 1500; backlog = 1500 * (1 + (i mod 4)) }
  | 1 -> Obs.Event.Dequeue { t; flow; seq = i; size = 1200; backlog = 300 * (i mod 5) }
  | 2 -> Obs.Event.Drop { t; flow; seq = i; size = 1500; reason = Obs.Event.Tail }
  | 3 -> Obs.Event.Ack { t; flow; seq = i; rtt = 0.05; newly_lost = i mod 2 }
  | 4 ->
    Obs.Event.Rate
      { t; flow; pacing = 1e6 *. (1.0 +. float_of_int (i mod 7)); cwnd = 10.0 }
  | 5 ->
    Obs.Event.Mi_snapshot
      {
        t;
        duration = 0.1;
        throughput = 2e6 +. float_of_int i;
        avg_rtt = 0.05;
        loss_rate = 0.0;
        rtt_gradient = 0.0;
        acked = 10;
        lost = 0;
      }
  | 6 ->
    Obs.Event.Cycle
      { t; chosen = "rl"; u_prev = 1.5; u_rl = nan; u_cl = 0.25; x_next = 1e6 }
  | _ -> Obs.Event.Link_rate { t; rate = 3e6 }

(* The online rollup (a [Trace.run] observer fed as events are
   emitted) and an offline replay over the trace's exported events
   must produce byte-identical CSV — the aggregates are a pure fold
   over the admitted stream. *)
let rollup_online_offline_prop =
  QCheck.Test.make ~count:100 ~name:"rollup online = offline replay of the export"
    QCheck.(list (pair (int_bound 99) (float_range 0.0 0.35)))
    (fun steps ->
      let events =
        let t = ref 0.0 in
        List.map
          (fun (k, dt) ->
            if k >= 95 then begin
              t := 0.0;
              Obs.Event.Run_start { t = 0.0; label = "run" }
            end
            else begin
              t := !t +. dt;
              rollup_event k !t
            end)
          steps
      in
      let online = Obs.Rollup.create ~window:0.1 () in
      let tr = Obs.Trace.create () in
      Obs.Trace.run tr ~observer:(Obs.Rollup.observe online) (fun () ->
          List.iter Obs.Trace.emit events);
      let offline = Obs.Rollup.create ~window:0.1 () in
      List.iter (Obs.Rollup.observe offline) (Obs.Trace.events tr);
      let render r =
        let b = Buffer.create 1024 in
        Obs.Rollup.add_csv r ~lane:0 b;
        Buffer.contents b
      in
      render online = render offline)

(* ------------------------------------------------------------------ *)
(* CSV schema widening *)

(* Consumers derive the expected column count from the emitted header
   (the schema has already grown 33 -> 35 -> 36 columns); nothing may
   hardcode it. *)
let test_csv_width_derived_from_header () =
  check_int "width of the event header" Obs.Event.csv_columns
    (Obs.Event.csv_width_of_header Obs.Event.csv_header);
  check_int "a future widened header widens the derived width"
    (Obs.Event.csv_columns + 2)
    (Obs.Event.csv_width_of_header (Obs.Event.csv_header ^ ",future_a,future_b"));
  check_int "single column" 1 (Obs.Event.csv_width_of_header "t");
  (* Rollup rows are exactly as wide as the rollup header says. *)
  let r = Obs.Rollup.create ~window:1.0 () in
  Obs.Rollup.observe r
    (Obs.Event.Enqueue { t = 0.1; flow = 0; seq = 0; size = 1; backlog = 1 });
  let b = Buffer.create 64 in
  Obs.Rollup.add_csv r ~lane:0 b;
  let w = Obs.Event.csv_width_of_header Obs.Rollup.csv_header in
  let rows =
    String.split_on_char '\n' (Buffer.contents b)
    |> List.filter (fun l -> l <> "")
  in
  check_bool "at least one rollup row" true (rows <> []);
  List.iter
    (fun row ->
      check_int "rollup row width" w (List.length (String.split_on_char ',' row)))
    rows

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_flight_ring_bounds () =
  let fl = Obs.Flight.create ~capacity:4 () in
  check_bool "inactive outside run" false (Obs.Flight.active ());
  Obs.Flight.run fl ~lane:3 (fun () ->
      check_bool "active inside run" true (Obs.Flight.active ());
      (* No tracer session: emit still feeds the flight ring. *)
      for i = 0 to 9 do
        Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:i)
      done;
      Obs.Trace.unobserved (fun () ->
          check_bool "unobserved masks the ring" false (Obs.Flight.active ());
          Obs.Trace.emit (ev ~t:99.0 ~seq:99)));
  check_bool "inactive again after run" false (Obs.Flight.active ());
  check_int "overwrites counted" 6 (Obs.Flight.dropped fl);
  match Obs.Flight.events fl with
  | [ (3, evs) ] ->
    check_bool "keeps the newest, oldest first" true
      (List.map Obs.Event.time evs = [ 6.0; 7.0; 8.0; 9.0 ])
  | lanes -> Alcotest.failf "expected exactly lane 3, got %d lane(s)" (List.length lanes)

let with_flight_dump_dir name f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "libra-%s-%d" name (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let saved = Obs.Flight.dump_dir () in
  Obs.Flight.set_dump_dir dir;
  Fun.protect ~finally:(fun () -> Obs.Flight.set_dump_dir saved) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_flight_dump_deterministic () =
  check_bool "no recorder -> no dump" true (Obs.Flight.dump ~reason:"x" () = None);
  with_flight_dump_dir "flight-dump" (fun dir ->
      let fl = Obs.Flight.create ~capacity:8 () in
      let dumped =
        Obs.Flight.run fl ~lane:1 (fun () ->
            for i = 0 to 2 do
              Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:i)
            done;
            Obs.Flight.dump ~reason:"task 7/fig: crash!" ())
      in
      match dumped with
      | None -> Alcotest.fail "dump returned None inside a flight run"
      | Some (path, n) ->
        check_int "three events dumped" 3 n;
        check_string "reason sanitized into the file name"
          (Filename.concat dir "flight-task-7-fig--crash-.jsonl")
          path;
        (* Each line parses as an event carrying the ring's lane. *)
        let lines =
          String.split_on_char '\n' (read_file path)
          |> List.filter (fun l -> l <> "")
        in
        check_int "one line per event" 3 (List.length lines);
        List.iter
          (fun line ->
            match Obs.Json.parse line with
            | Error m -> Alcotest.failf "dump line %S: %s" line m
            | Ok v ->
              check_bool "lane stamped" true
                (Option.bind (Obs.Json.member "lane" v) Obs.Json.num = Some 1.0))
          lines)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "off outside run" `Quick test_trace_off_outside_run;
          Alcotest.test_case "category filter" `Quick test_trace_category_filter;
          Alcotest.test_case "run boundary survives filter" `Quick
            test_run_boundary_survives_filter;
          Alcotest.test_case "parse filter" `Quick test_category_parse_filter;
          Alcotest.test_case "ring overwrites" `Quick test_trace_ring_overwrites_oldest;
          Alcotest.test_case "lane merge order" `Quick test_trace_lane_merge_order;
          Alcotest.test_case "nested run" `Quick test_trace_nested_run_restores_outer;
          Alcotest.test_case "unobserved" `Quick test_trace_unobserved_masks;
          Alcotest.test_case "parallel lanes" `Quick
            test_trace_parallel_lanes_deterministic;
        ] );
      ( "export",
        [ Alcotest.test_case "jsonl + csv" `Quick test_jsonl_lines_parse_and_roundtrip ] );
      ( "sample",
        [
          Alcotest.test_case "parse + render" `Quick test_sample_parse_and_render;
          Alcotest.test_case "deterministic + unbiased" `Quick
            test_sample_deterministic_and_unbiased;
          Alcotest.test_case "sampled = offline filter" `Quick
            test_sampled_trace_equals_offline_filter;
        ] );
      ( "rollup",
        [
          Alcotest.test_case "windows + fields" `Quick test_rollup_windows_and_fields;
          Alcotest.test_case "run_start segments" `Quick test_rollup_run_start_segments;
          QCheck_alcotest.to_alcotest rollup_online_offline_prop;
          Alcotest.test_case "csv width from header" `Quick
            test_csv_width_derived_from_header;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring bounds" `Quick test_flight_ring_bounds;
          Alcotest.test_case "dump deterministic" `Quick test_flight_dump_deterministic;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled no-op" `Quick test_span_disabled_noop;
          Alcotest.test_case "nesting structure" `Quick test_span_nesting_structure;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "unobserved" `Quick test_span_unobserved_masks;
          Alcotest.test_case "lane merge + sort" `Quick test_span_lane_merge_and_sort;
          Alcotest.test_case "json sanity" `Quick test_span_json_sanity;
          Alcotest.test_case "attribution >= 90%" `Quick test_span_attribution;
        ] );
      ( "manifest",
        [
          Alcotest.test_case "fresh manifest validates" `Quick test_manifest_validates;
          Alcotest.test_case "bad sha rejected" `Quick test_manifest_rejects_bad_sha;
          Alcotest.test_case "missing key rejected" `Quick
            test_manifest_rejects_missing_key;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick test_metrics_counters_and_gauges;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram_buckets;
          Alcotest.test_case "merge rules" `Quick test_metrics_merge_rules;
          Alcotest.test_case "re-registration" `Quick test_metrics_reregistration;
          Alcotest.test_case "quantile: empty" `Quick test_quantile_empty;
          Alcotest.test_case "quantile: single sample" `Quick
            test_quantile_single_sample;
          QCheck_alcotest.to_alcotest quantile_monotone_prop;
        ] );
      ( "perf",
        [
          Alcotest.test_case "gate fixture" `Quick test_perf_gate_fixture;
          Alcotest.test_case "empty + garbage history" `Quick
            test_perf_gate_empty_and_garbage;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "set_member" `Quick test_json_set_member;
        ] );
    ]
