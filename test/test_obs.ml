(* Tests for lib/obs: trace sessions (lanes, rings, filters, exports),
   the metrics registry (merge rules, no-op discipline) and the mini
   JSON parser the exporters are validated with. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ev ~t ~seq =
  Obs.Event.Enqueue { t; flow = 0; seq; size = 1500; backlog = 1500 }

(* ------------------------------------------------------------------ *)
(* Trace sessions *)

let test_trace_records_in_order () =
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      for i = 0 to 9 do
        Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:i)
      done);
  check_int "all recorded" 10 (Obs.Trace.length tr);
  check_int "none dropped" 0 (Obs.Trace.dropped tr);
  let times = List.map Obs.Event.time (Obs.Trace.events tr) in
  check_bool "in emission order" true
    (times = List.init 10 float_of_int)

let test_trace_off_outside_run () =
  check_bool "no tracer installed" false (Obs.Trace.on Obs.Category.Pkt);
  (* Emitting without a tracer is a silent no-op. *)
  Obs.Trace.emit (ev ~t:0.0 ~seq:0);
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      check_bool "on inside run" true (Obs.Trace.on Obs.Category.Pkt));
  check_bool "off again after run" false (Obs.Trace.on Obs.Category.Pkt)

let test_trace_category_filter () =
  let tr = Obs.Trace.create ~categories:[ Obs.Category.Stage ] () in
  Obs.Trace.run tr (fun () ->
      check_bool "subscribed category on" true (Obs.Trace.on Obs.Category.Stage);
      check_bool "unsubscribed category off" false (Obs.Trace.on Obs.Category.Pkt);
      Obs.Trace.emit (ev ~t:0.0 ~seq:0);
      Obs.Trace.emit (Obs.Event.Stage { t = 1.0; stage = "exploration"; base_rate = 1e6 }));
  check_int "only stage recorded" 1 (Obs.Trace.length tr)

(* Run boundaries are structural: they survive any category filter,
   because consumers need them to segment lanes whose sim clock
   restarts (a lane that runs several simulations back-to-back). *)
let test_run_boundary_survives_filter () =
  let tr = Obs.Trace.create ~categories:[ Obs.Category.Stage ] () in
  Obs.Trace.run tr (fun () ->
      check_bool "run category on despite filter" true
        (Obs.Trace.on Obs.Category.Run);
      Obs.Trace.emit (Obs.Event.Run_start { t = 0.0; label = "sim" });
      Obs.Trace.emit (Obs.Event.Stage { t = 1.0; stage = "exploration"; base_rate = 1e6 }));
  check_int "boundary + stage recorded" 2 (Obs.Trace.length tr);
  check_bool "boundary serializes" true
    (match Obs.Trace.events tr with
    | Obs.Event.Run_start { label = "sim"; _ } :: _ -> true
    | _ -> false)

let test_category_parse_filter () =
  check_bool "parses a list" true
    (Obs.Category.parse_filter "pkt, STAGE,rl"
    = [ Obs.Category.Pkt; Obs.Category.Stage; Obs.Category.Rl ]);
  check_bool "rejects unknown" true
    (try
       ignore (Obs.Category.parse_filter "pkt,nope");
       false
     with Invalid_argument _ -> true);
  (* every category round-trips through its name *)
  check_bool "names roundtrip" true
    (List.for_all
       (fun c -> Obs.Category.of_string (Obs.Category.to_string c) = Some c)
       Obs.Category.all)

let test_trace_ring_overwrites_oldest () =
  let tr = Obs.Trace.create ~ring_capacity:4 () in
  Obs.Trace.run tr (fun () ->
      for i = 0 to 9 do
        Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:i)
      done);
  check_int "capped at capacity" 4 (Obs.Trace.length tr);
  check_int "dropped count" 6 (Obs.Trace.dropped tr);
  let times = List.map Obs.Event.time (Obs.Trace.events tr) in
  check_bool "keeps the newest" true (times = [ 6.0; 7.0; 8.0; 9.0 ])

let test_trace_lane_merge_order () =
  let tr = Obs.Trace.create () in
  (* Register lanes out of order: merge must sort by lane id, not by
     registration (or scheduling) order. *)
  Obs.Trace.run tr ~lane:2 (fun () -> Obs.Trace.emit (ev ~t:9.0 ~seq:2));
  Obs.Trace.run tr ~lane:0 (fun () -> Obs.Trace.emit (ev ~t:5.0 ~seq:0));
  Obs.Trace.run tr ~lane:1 (fun () -> Obs.Trace.emit (ev ~t:7.0 ~seq:1));
  let seqs =
    List.map
      (function Obs.Event.Enqueue e -> e.seq | _ -> -1)
      (Obs.Trace.events tr)
  in
  check_bool "ascending lane order" true (seqs = [ 0; 1; 2 ])

let test_trace_nested_run_restores_outer () =
  let outer = Obs.Trace.create () in
  let inner = Obs.Trace.create () in
  Obs.Trace.run outer (fun () ->
      Obs.Trace.emit (ev ~t:0.0 ~seq:0);
      Obs.Trace.run inner (fun () -> Obs.Trace.emit (ev ~t:1.0 ~seq:1));
      Obs.Trace.emit (ev ~t:2.0 ~seq:2));
  check_int "outer got its two" 2 (Obs.Trace.length outer);
  check_int "inner got the nested one" 1 (Obs.Trace.length inner)

let test_trace_unobserved_masks () =
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      Obs.Trace.emit (ev ~t:0.0 ~seq:0);
      Obs.Trace.unobserved (fun () ->
          check_bool "off inside unobserved" false (Obs.Trace.on Obs.Category.Pkt);
          Obs.Trace.emit (ev ~t:1.0 ~seq:1));
      Obs.Trace.emit (ev ~t:2.0 ~seq:2));
  check_int "masked event not recorded" 2 (Obs.Trace.length tr)

(* Concurrent lanes: events land in the lane of the emitting task, and
   the export is identical however the tasks were scheduled. *)
let test_trace_parallel_lanes_deterministic () =
  let export pool_size =
    let pool = Exec.Pool.create ~size:pool_size () in
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () ->
        let tr = Obs.Trace.create () in
        ignore
          (Exec.Pool.map pool
             (fun lane ->
               Obs.Trace.run tr ~lane (fun () ->
                   for i = 0 to 99 do
                     Obs.Trace.emit (ev ~t:(float_of_int i) ~seq:((1000 * lane) + i))
                   done))
             (Array.init 6 Fun.id));
        Obs.Trace.to_jsonl tr)
  in
  check_string "jsonl identical at pool sizes 1 and 4" (export 1) (export 4)

(* ------------------------------------------------------------------ *)
(* Exports *)

let test_jsonl_lines_parse_and_roundtrip () =
  let tr = Obs.Trace.create () in
  Obs.Trace.run tr (fun () ->
      Obs.Trace.emit (ev ~t:0.25 ~seq:3);
      Obs.Trace.emit
        (Obs.Event.Cycle
           { t = 1.5; chosen = "skip"; u_prev = nan; u_rl = nan; u_cl = nan; x_next = 2e6 });
      Obs.Trace.emit
        (Obs.Event.Rl_step
           { t = 2.0; episode = -1; step = 7; rate = 1.25e6; reward = nan; action = -0.5 }));
  let lines =
    String.split_on_char '\n' (Obs.Trace.to_jsonl tr)
    |> List.filter (fun l -> l <> "")
  in
  check_int "three lines" 3 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Error msg -> Alcotest.failf "line %S does not parse: %s" line msg
      | Ok v ->
        check_bool "has t" true (Obs.Json.member "t" v <> None);
        check_bool "has ev" true
          (Option.bind (Obs.Json.member "ev" v) Obs.Json.str <> None))
    lines;
  (* Non-finite floats export as null. *)
  let skip_line = List.nth lines 1 in
  (match Obs.Json.parse skip_line with
  | Ok v ->
    check_bool "nan is null" true (Obs.Json.member "u_prev" v = Some Obs.Json.Null)
  | Error _ -> Alcotest.fail "skip line unparseable");
  (* CSV: header plus one row per event, fixed column count. *)
  let csv = Obs.Trace.to_csv tr in
  let rows = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check_int "header + 3 rows" 4 (List.length rows);
  List.iter
    (fun row ->
      check_int "fixed column count" Obs.Event.csv_columns
        (List.length (String.split_on_char ',' row)))
    rows

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counters_and_gauges () =
  let c = Obs.Metrics.counter "test.counter" in
  let g = Obs.Metrics.gauge "test.gauge" in
  let reg = Obs.Metrics.create_registry () in
  (* No registry installed: updates are dropped. *)
  Obs.Metrics.incr c;
  Obs.Metrics.run reg (fun () ->
      Obs.Metrics.incr c;
      Obs.Metrics.add c 4;
      Obs.Metrics.set g 2.5);
  Obs.Metrics.incr c;
  let rows = Obs.Metrics.dump reg in
  check_bool "counter is 5" true
    (List.mem ("test.counter", "counter", "count", "5") rows);
  check_bool "gauge is 2.5" true
    (List.mem ("test.gauge", "gauge", "value", "2.5") rows)

let test_metrics_histogram_buckets () =
  let h = Obs.Metrics.histogram "test.hist" ~bounds:[| 1.0; 10.0 |] in
  let reg = Obs.Metrics.create_registry () in
  Obs.Metrics.run reg (fun () ->
      List.iter (Obs.Metrics.observe h) [ 0.5; 0.9; 5.0; 50.0 ]);
  let rows = Obs.Metrics.dump reg in
  check_bool "le_1 = 2" true (List.mem ("test.hist", "histogram", "le_1", "2") rows);
  check_bool "le_10 = 1" true (List.mem ("test.hist", "histogram", "le_10", "1") rows);
  check_bool "overflow = 1" true (List.mem ("test.hist", "histogram", "le_inf", "1") rows);
  check_bool "count = 4" true (List.mem ("test.hist", "histogram", "count", "4") rows)

let test_metrics_merge_rules () =
  let c = Obs.Metrics.counter "test.merge.counter" in
  let g = Obs.Metrics.gauge "test.merge.gauge" in
  let a = Obs.Metrics.create_registry () in
  let b = Obs.Metrics.create_registry () in
  Obs.Metrics.run a (fun () ->
      Obs.Metrics.add c 3;
      Obs.Metrics.set g 1.0);
  Obs.Metrics.run b (fun () -> Obs.Metrics.add c 4);
  let merged = Obs.Metrics.create_registry () in
  Obs.Metrics.merge ~into:merged a;
  Obs.Metrics.merge ~into:merged b;
  let rows = Obs.Metrics.dump merged in
  check_bool "counters add" true
    (List.mem ("test.merge.counter", "counter", "count", "7") rows);
  (* b never wrote the gauge, so a's write survives the later merge. *)
  check_bool "unwritten gauge does not overwrite" true
    (List.mem ("test.merge.gauge", "gauge", "value", "1") rows)

let test_metrics_reregistration () =
  let a = Obs.Metrics.counter "test.rereg" in
  let b = Obs.Metrics.counter "test.rereg" in
  check_bool "same probe" true (a = b);
  check_bool "kind mismatch rejected" true
    (try
       ignore (Obs.Metrics.gauge "test.rereg");
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mini JSON *)

let test_json_roundtrip () =
  let src = {|{"a": 1.5, "b": [true, null, "x\ny"], "c": {"d": -2e3}}|} in
  match Obs.Json.parse src with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok v ->
    check_bool "a" true (Option.bind (Obs.Json.member "a" v) Obs.Json.num = Some 1.5);
    (* Printing then reparsing yields the same tree. *)
    (match Obs.Json.parse (Obs.Json.to_string v) with
    | Ok v2 -> check_bool "roundtrip" true (v = v2)
    | Error msg -> Alcotest.failf "reparse failed: %s" msg)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "rejects %S" s) true
        (match Obs.Json.parse s with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "{\"a\":}"; "[1,]"; "nul"; "{\"a\":1} trailing" ]

let test_json_set_member () =
  let v = Obs.Json.Obj [ ("a", Obs.Json.Num 1.0) ] in
  let v = Obs.Json.set_member "b" (Obs.Json.Num 2.0) v in
  let v = Obs.Json.set_member "a" (Obs.Json.Num 9.0) v in
  check_bool "replaced" true (Option.bind (Obs.Json.member "a" v) Obs.Json.num = Some 9.0);
  check_bool "appended" true (Option.bind (Obs.Json.member "b" v) Obs.Json.num = Some 2.0)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "records in order" `Quick test_trace_records_in_order;
          Alcotest.test_case "off outside run" `Quick test_trace_off_outside_run;
          Alcotest.test_case "category filter" `Quick test_trace_category_filter;
          Alcotest.test_case "run boundary survives filter" `Quick
            test_run_boundary_survives_filter;
          Alcotest.test_case "parse filter" `Quick test_category_parse_filter;
          Alcotest.test_case "ring overwrites" `Quick test_trace_ring_overwrites_oldest;
          Alcotest.test_case "lane merge order" `Quick test_trace_lane_merge_order;
          Alcotest.test_case "nested run" `Quick test_trace_nested_run_restores_outer;
          Alcotest.test_case "unobserved" `Quick test_trace_unobserved_masks;
          Alcotest.test_case "parallel lanes" `Quick
            test_trace_parallel_lanes_deterministic;
        ] );
      ( "export",
        [ Alcotest.test_case "jsonl + csv" `Quick test_jsonl_lines_parse_and_roundtrip ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick test_metrics_counters_and_gauges;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram_buckets;
          Alcotest.test_case "merge rules" `Quick test_metrics_merge_rules;
          Alcotest.test_case "re-registration" `Quick test_metrics_reregistration;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "set_member" `Quick test_json_set_member;
        ] );
    ]
