(* Tests for the parallel execution layer and the determinism contract:
   fanning work across domains must change nothing but wall-clock time.
   Every comparison here is exact ([=] on floats, byte-equal strings) --
   parallel results are required to be identical to sequential ones, not
   statistically similar. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let with_pool size f =
  let pool = Exec.Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) (fun () -> f pool)

let test_map_preserves_order () =
  with_pool 4 (fun pool ->
      let input = Array.init 100 (fun i -> i) in
      let out = Exec.Pool.map pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "squares in order"
        (Array.map (fun x -> x * x) input)
        out;
      check_int "empty input" 0 (Array.length (Exec.Pool.map pool (fun x -> x) [||])))

let test_map_list_preserves_order () =
  with_pool 3 (fun pool ->
      let out = Exec.Pool.map_list pool String.uppercase_ascii [ "a"; "b"; "c" ] in
      Alcotest.(check (list string)) "in order" [ "A"; "B"; "C" ] out)

let test_map_reduce_folds_in_input_order () =
  with_pool 4 (fun pool ->
      (* String concatenation is non-commutative: any reordering of the
         reduction would be visible. *)
      let input = Array.init 50 (fun i -> i) in
      let got =
        Exec.Pool.map_reduce pool ~f:string_of_int
          ~reduce:(fun acc s -> acc ^ "," ^ s)
          ~init:"" input
      in
      let want =
        Array.fold_left (fun acc i -> acc ^ "," ^ string_of_int i) "" input
      in
      Alcotest.(check string) "left fold in input order" want got)

exception Boom of int

let test_map_propagates_exceptions () =
  with_pool 4 (fun pool ->
      check_bool "raises" true
        (try
           ignore (Exec.Pool.map pool (fun i -> if i = 13 then raise (Boom i) else i)
                     (Array.init 40 (fun i -> i)));
           false
         with Boom 13 -> true);
      (* The pool survives a failed batch. *)
      check_int "still works" 10
        (Array.fold_left ( + ) 0 (Exec.Pool.map pool (fun x -> x) (Array.init 5 (fun i -> i)))))

let test_nested_maps_do_not_deadlock () =
  (* More in-flight batches than domains: the caller of an inner map
     helps drain the queue instead of deadlocking. *)
  with_pool 2 (fun pool ->
      let out =
        Exec.Pool.map pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Exec.Pool.map pool (fun j -> (10 * i) + j) (Array.init 8 (fun j -> j))))
          (Array.init 6 (fun i -> i))
      in
      Alcotest.(check (array int)) "nested sums"
        (Array.init 6 (fun i -> (80 * i) + 28))
        out)

let test_sequential_pool_inline () =
  let out = Exec.Pool.map Exec.Pool.sequential (fun x -> x + 1) (Array.init 9 (fun i -> i)) in
  Alcotest.(check (array int)) "inline map" (Array.init 9 (fun i -> i + 1)) out;
  check_int "size 1" 1 (Exec.Pool.size Exec.Pool.sequential)

(* ------------------------------------------------------------------ *)
(* Reports *)

let test_report_capture_buffers_output () =
  let r =
    Harness.Report.capture (fun () ->
        Harness.Report.printf "hello %d\n" 42;
        Harness.Report.text "world";
        Harness.Report.result "answer" "42")
  in
  Alcotest.(check string) "buffered" "hello 42\nworld\n" (Harness.Report.render r);
  Alcotest.(check (list (pair string string)))
    "results" [ ("answer", "42") ] (Harness.Report.results r)

let test_report_capture_nests () =
  let inner = ref None in
  let outer =
    Harness.Report.capture (fun () ->
        Harness.Report.text "before";
        inner := Some (Harness.Report.capture (fun () -> Harness.Report.text "nested"));
        Harness.Report.text "after")
  in
  Alcotest.(check string) "outer unpolluted" "before\nafter\n"
    (Harness.Report.render outer);
  Alcotest.(check string) "inner captured" "nested\n"
    (Harness.Report.render (Option.get !inner))

(* ------------------------------------------------------------------ *)
(* Determinism: parallel simulation results are exactly sequential ones *)

let outcome_quad ~pool ~base_seed spec ~duration =
  Harness.Scenario.averaged ~pool ~base_seed ~runs:4 ~factory:Harness.Ccas.cubic
    ~duration spec

let check_exact_quad label (u1, d1, l1, t1) (u2, d2, l2, t2) =
  check_bool (label ^ ": utilization bit-identical") true (u1 = u2);
  check_bool (label ^ ": delay bit-identical") true (d1 = d2);
  check_bool (label ^ ": loss bit-identical") true (l1 = l2);
  check_bool (label ^ ": throughput bit-identical") true (t1 = t2)

let test_averaged_deterministic_wired () =
  let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
  with_pool 4 (fun pool ->
      let seq = outcome_quad ~pool:Exec.Pool.sequential ~base_seed:5 spec ~duration:4.0 in
      let par = outcome_quad ~pool ~base_seed:5 spec ~duration:4.0 in
      check_exact_quad "wired" seq par)

let test_averaged_deterministic_lte () =
  let trace = Traces.Lte.generate ~seed:11 ~duration:4.0 Traces.Lte.Walking in
  let spec = Harness.Scenario.make_spec ~loss_p:0.01 trace in
  with_pool 4 (fun pool ->
      let seq = outcome_quad ~pool:Exec.Pool.sequential ~base_seed:17 spec ~duration:4.0 in
      let par = outcome_quad ~pool ~base_seed:17 spec ~duration:4.0 in
      check_exact_quad "lte" seq par)

(* Fault-injected runs obey the same contract: the injector draws from
   keyed rng streams, so an impaired scenario is bit-identical at any
   pool size, on both wired and trace-driven (LTE) links. *)
let test_averaged_deterministic_impaired () =
  let impair =
    Faults.Spec.of_string_exn "gilbert+reorder+jitter+outage:at=1,for=0.5"
  in
  let wired = Harness.Scenario.make_spec ~impair (Traces.Rate.constant 24.0) in
  let lte =
    Harness.Scenario.make_spec ~impair
      (Traces.Lte.generate ~seed:11 ~duration:4.0 Traces.Lte.Walking)
  in
  with_pool 4 (fun pool ->
      List.iter
        (fun (label, spec) ->
          let seq =
            outcome_quad ~pool:Exec.Pool.sequential ~base_seed:23 spec
              ~duration:4.0
          in
          let par = outcome_quad ~pool ~base_seed:23 spec ~duration:4.0 in
          check_exact_quad label seq par)
        [ ("impaired wired", wired); ("impaired lte", lte) ])

let test_evaluate_deterministic () =
  (* RL evaluation rollouts fan episodes across the pool; the summary
     must not depend on pool size. *)
  let outcome =
    Rlcc.Train.run
      { Rlcc.Train.default_config with Rlcc.Train.episodes = 3; seed = 71 }
  in
  let seq = Rlcc.Train.evaluate ~pool:Exec.Pool.sequential ~episodes:6 outcome in
  let par = with_pool 4 (fun pool -> Rlcc.Train.evaluate ~pool ~episodes:6 outcome) in
  check_bool "eval bit-identical" true (seq = par);
  check_int "episodes run" 6 seq.Rlcc.Train.episodes_run

(* Registry groups render byte-identical reports whether the experiments
   execute sequentially or fanned across domains. Run at a tiny scale so
   the test stays quick; tab6 exercises the nested trial fan-out and
   fig2b the repeated-LTE fan-out. *)
let tiny_scale =
  {
    Harness.Scale.duration = 2.0;
    runs = 2;
    safety_trials = 2;
    train_episodes = 4;
    eval_episodes = 4;
  }

let test_registry_reports_byte_identical () =
  Harness.Scale.set tiny_scale;
  Fun.protect
    ~finally:(fun () -> Harness.Scale.set Harness.Scale.quick)
    (fun () ->
      (* population-mini rides along: its report (spawn counts, FCT
         percentiles, logical event count — no wall-clock numbers) must
         not move with the worker-pool size either. *)
      let groups = [ "tab6"; "fig2b"; "population-mini" ] in
      (* The experiments take their pool from [Exec.Pool.default]; size
         it explicitly for each pass. *)
      let render_with domains =
        Exec.Pool.set_default_size domains;
        List.map
          (fun id ->
            match Harness.Registry.find id with
            | Some e -> Harness.Report.render (e.Harness.Registry.run ())
            | None -> Alcotest.fail ("missing group " ^ id))
          groups
      in
      let seq = render_with 1 in
      let par = render_with 4 in
      Exec.Pool.set_default_size (Exec.Pool.default_size ());
      List.iter2
        (fun a b -> Alcotest.(check string) "report bytes" a b)
        seq par;
      check_bool "reports non-empty" true (List.for_all (fun s -> s <> "") seq))

(* exp_trace's artifacts (JSONL trace, CSV exports, merged metrics) are
   byte-identical at any pool size: scenarios are tracer lanes and the
   export merges lanes in lane order, not scheduling order. *)
let test_exp_trace_artifacts_byte_identical () =
  Harness.Scale.set tiny_scale;
  Fun.protect
    ~finally:(fun () -> Harness.Scale.set Harness.Scale.quick)
    (fun () ->
      let artifacts_with size =
        with_pool size (fun pool -> Harness.Exp_trace.artifacts ~pool ())
      in
      let seq = artifacts_with 1 in
      let par = artifacts_with 4 in
      List.iter2
        (fun (name_a, a) (name_b, b) ->
          Alcotest.(check string) "artifact name" name_a name_b;
          Alcotest.(check string) (name_a ^ " bytes") a b)
        seq par;
      check_bool "trace non-empty" true
        (List.exists
           (fun (name, contents) -> name = "exp_trace.jsonl" && contents <> "")
           seq))

(* Span *structure* (lane ids, span names, nesting, counts) is part of
   the determinism contract: a profile recorded over a pool fan-out is
   byte-identical at any pool size. Durations and GC words are host
   measurements and are deliberately absent from [Obs.Span.structure]. *)
let test_span_structure_pool_independent () =
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let structure_with size =
    with_pool size (fun pool ->
        let t = Obs.Span.create () in
        let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
        ignore
          (Exec.Pool.map pool
             (fun lane ->
               Obs.Span.run t ~lane (fun () ->
                   Harness.Scenario.run_uniform ~seed:(7 + lane)
                     ~factory:Harness.Ccas.cubic ~duration:2.0 spec))
             (Array.init 3 Fun.id));
        Obs.Span.structure t)
  in
  let seq = structure_with 1 in
  let par = structure_with 4 in
  Alcotest.(check string) "span structure bytes" seq par;
  check_bool "profiles the simulator" true
    (contains "netsim.run" seq && contains "heap.push" seq);
  check_bool "all three lanes exported" true
    (List.for_all (fun l -> contains l seq) [ "lane 0"; "lane 1"; "lane 2" ])

(* The online invariant checker joins the determinism contract:
   per-lane checkers over a pool fan-out (the wiring `experiments
   --invariant` uses) must record identical violation lists at any pool
   size — same specs, indices, times, and details, byte for byte. *)
let test_checker_pool_independent () =
  let render c =
    String.concat "\n"
      (List.map
         (fun (v : Check.Checker.violation) ->
           Printf.sprintf "%s|%s|%d|%.17g|%s" v.spec v.kind v.index v.time
             v.detail)
         (Check.Checker.violations c))
  in
  let violations_with size =
    with_pool size (fun pool ->
        let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
        (* One spec that fires on every ACK, one that stays clean:
           both the dirty and the clean path must be pool-independent. *)
        let pack =
          Check.Spec.parse_lines
            [ "bad-rtt: always ev=ack & rtt<0"; "q-nonneg: always backlog>=0" ]
        in
        let tracer = Obs.Trace.create () in
        Exec.Pool.map pool
          (fun lane ->
            let c = Check.Checker.create ~rtt:spec.Harness.Scenario.rtt pack in
            Obs.Trace.run tracer ~lane ~observer:(Check.Checker.on_event c)
              (fun () ->
                ignore
                  (Harness.Scenario.run_uniform ~seed:(7 + lane)
                     ~factory:Harness.Ccas.cubic ~duration:2.0 spec));
            (Check.Checker.events_seen c, Check.Checker.total c, render c))
          (Array.init 3 Fun.id))
  in
  let seq = violations_with 1 in
  let par = violations_with 4 in
  check_int "lane count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun lane (ev_s, tot_s, render_s) ->
      let ev_p, tot_p, render_p = par.(lane) in
      check_int (Printf.sprintf "lane %d events" lane) ev_s ev_p;
      check_int (Printf.sprintf "lane %d total" lane) tot_s tot_p;
      check_bool (Printf.sprintf "lane %d violations fired" lane) true (tot_s > 0);
      Alcotest.(check string)
        (Printf.sprintf "lane %d violation bytes" lane)
        render_s render_p)
    seq

(* ------------------------------------------------------------------ *)
(* Supervised registry runs: crash isolation and checkpoint/resume *)

let mk_entry id body = Harness.Registry.e id ("test entry " ^ id) body id

let ok_a () =
  mk_entry "ok-a" (fun () ->
      Harness.Report.printf "alpha line\n";
      Harness.Report.result "alpha" "1")

let ok_b () = mk_entry "ok-b" (fun () -> Harness.Report.printf "beta line\n")
let crash () = mk_entry "crash" (fun () -> failwith "injected")

let renders outcomes =
  List.map
    (fun o -> (o.Harness.Registry.entry.Harness.Registry.id,
               Harness.Report.render o.Harness.Registry.report))
    outcomes

(* A crashing entry must not perturb its siblings: their reports are
   byte-identical to a run without the crasher, at any pool size, and
   the failure surfaces as a structured outcome in input order. *)
let test_crashing_sibling_isolated () =
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          let with_crash =
            Harness.Registry.run_entries ~pool
              ~entries:[ ok_a (); crash (); ok_b () ] ()
          in
          let without =
            Harness.Registry.run_entries ~pool ~entries:[ ok_a (); ok_b () ] ()
          in
          (match with_crash with
          | [ a; c; b ] ->
            check_bool "a ok" true (a.Harness.Registry.failure = None);
            check_bool "b ok" true (b.Harness.Registry.failure = None);
            (match c.Harness.Registry.failure with
            | Some f ->
              check_bool "crash kind" true
                (f.Exec.Supervisor.kind = Exec.Supervisor.Crash)
            | None -> Alcotest.fail "crasher reported success")
          | _ -> Alcotest.fail "outcome order/length wrong");
          let pick id l = List.assoc id (renders l) in
          Alcotest.(check string)
            (Printf.sprintf "ok-a bytes (pool %d)" size)
            (pick "ok-a" without) (pick "ok-a" with_crash);
          Alcotest.(check string)
            (Printf.sprintf "ok-b bytes (pool %d)" size)
            (pick "ok-b" without) (pick "ok-b" with_crash);
          let s = Harness.Registry.summarize with_crash in
          check_int "total" 3 s.Harness.Registry.total;
          check_int "ok" 2 s.Harness.Registry.ok;
          check_int "failed" 1 s.Harness.Registry.failed))
    [ 1; 4 ]

let temp_ckpt_store =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "libra-exec-ckpt-%d-%d" (Unix.getpid ()) !n)
    in
    Exec.Checkpoint.create ~dir

(* Kill-and-resume: a first run that loses an entry to a crash leaves
   its finished siblings checkpointed; the resume run serves those
   byte-identically and re-executes only the unfinished cell. *)
let test_checkpoint_resume_skips_completed () =
  let store = temp_ckpt_store () in
  let sv resume =
    {
      Harness.Registry.default_supervision with
      Harness.Registry.checkpoint = Some store;
      resume;
    }
  in
  let first =
    Harness.Registry.run_entries ~pool:Exec.Pool.sequential
      ~supervision:(sv false)
      ~entries:[ ok_a (); crash (); ok_b () ]
      ()
  in
  check_bool "nothing resumed on first run" true
    (List.for_all
       (fun (o : Harness.Registry.outcome) -> not o.Harness.Registry.resumed)
       first);
  (* Second run: the crasher is replaced by a now-working entry (the
     "restart after fixing the fault" scenario). Completed cells are
     served from the store; only the fixed cell executes. *)
  let executed = ref [] in
  let fixed =
    Harness.Registry.e "crash" "test entry crash (fixed)"
      (fun () ->
        executed := "crash" :: !executed;
        Harness.Report.printf "recovered\n")
      "crash"
  in
  let logged id body () =
    executed := id :: !executed;
    body ()
  in
  let ok_a' =
    Harness.Registry.e "ok-a" "test entry ok-a"
      (logged "ok-a" (fun () ->
           Harness.Report.printf "alpha line\n";
           Harness.Report.result "alpha" "1"))
      "ok-a"
  in
  let ok_b' =
    Harness.Registry.e "ok-b" "test entry ok-b"
      (logged "ok-b" (fun () -> Harness.Report.printf "beta line\n"))
      "ok-b"
  in
  let second =
    Harness.Registry.run_entries ~pool:Exec.Pool.sequential
      ~supervision:(sv true) ~entries:[ ok_a'; fixed; ok_b' ] ()
  in
  (match second with
  | [ a; c; b ] ->
    check_bool "ok-a resumed" true a.Harness.Registry.resumed;
    check_bool "ok-b resumed" true b.Harness.Registry.resumed;
    check_bool "crash cell re-executed" true (not c.Harness.Registry.resumed);
    check_bool "crash cell now ok" true (c.Harness.Registry.failure = None)
  | _ -> Alcotest.fail "outcome order/length wrong");
  Alcotest.(check (list string)) "only the unfinished cell ran" [ "crash" ]
    !executed;
  (* Resumed reports are byte-identical to the originals. *)
  let pick id l = List.assoc id (renders l) in
  Alcotest.(check string) "ok-a bytes across resume" (pick "ok-a" first)
    (pick "ok-a" second);
  Alcotest.(check string) "ok-b bytes across resume" (pick "ok-b" first)
    (pick "ok-b" second);
  let s = Harness.Registry.summarize second in
  check_int "resumed count" 2 s.Harness.Registry.resumed;
  check_int "failed count" 0 s.Harness.Registry.failed

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_preserves_order;
          Alcotest.test_case "map_list order" `Quick test_map_list_preserves_order;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_folds_in_input_order;
          Alcotest.test_case "exceptions" `Quick test_map_propagates_exceptions;
          Alcotest.test_case "nested no deadlock" `Quick test_nested_maps_do_not_deadlock;
          Alcotest.test_case "sequential inline" `Quick test_sequential_pool_inline;
        ] );
      ( "report",
        [
          Alcotest.test_case "capture buffers" `Quick test_report_capture_buffers_output;
          Alcotest.test_case "capture nests" `Quick test_report_capture_nests;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "averaged wired" `Slow test_averaged_deterministic_wired;
          Alcotest.test_case "averaged lte" `Slow test_averaged_deterministic_lte;
          Alcotest.test_case "averaged impaired" `Slow
            test_averaged_deterministic_impaired;
          Alcotest.test_case "rl evaluate" `Slow test_evaluate_deterministic;
          Alcotest.test_case "registry reports" `Slow test_registry_reports_byte_identical;
          Alcotest.test_case "exp_trace artifacts" `Slow
            test_exp_trace_artifacts_byte_identical;
          Alcotest.test_case "invariant checker" `Slow
            test_checker_pool_independent;
          Alcotest.test_case "span structure" `Slow
            test_span_structure_pool_independent;
        ] );
      ( "supervised",
        [
          Alcotest.test_case "crash isolation" `Quick test_crashing_sibling_isolated;
          Alcotest.test_case "checkpoint resume" `Quick
            test_checkpoint_resume_skips_completed;
        ] );
    ]
