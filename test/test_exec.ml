(* Tests for the parallel execution layer and the determinism contract:
   fanning work across domains must change nothing but wall-clock time.
   Every comparison here is exact ([=] on floats, byte-equal strings) --
   parallel results are required to be identical to sequential ones, not
   statistically similar. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool basics *)

let with_pool size f =
  let pool = Exec.Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) (fun () -> f pool)

let test_map_preserves_order () =
  with_pool 4 (fun pool ->
      let input = Array.init 100 (fun i -> i) in
      let out = Exec.Pool.map pool (fun x -> x * x) input in
      Alcotest.(check (array int)) "squares in order"
        (Array.map (fun x -> x * x) input)
        out;
      check_int "empty input" 0 (Array.length (Exec.Pool.map pool (fun x -> x) [||])))

let test_map_list_preserves_order () =
  with_pool 3 (fun pool ->
      let out = Exec.Pool.map_list pool String.uppercase_ascii [ "a"; "b"; "c" ] in
      Alcotest.(check (list string)) "in order" [ "A"; "B"; "C" ] out)

let test_map_reduce_folds_in_input_order () =
  with_pool 4 (fun pool ->
      (* String concatenation is non-commutative: any reordering of the
         reduction would be visible. *)
      let input = Array.init 50 (fun i -> i) in
      let got =
        Exec.Pool.map_reduce pool ~f:string_of_int
          ~reduce:(fun acc s -> acc ^ "," ^ s)
          ~init:"" input
      in
      let want =
        Array.fold_left (fun acc i -> acc ^ "," ^ string_of_int i) "" input
      in
      Alcotest.(check string) "left fold in input order" want got)

exception Boom of int

let test_map_propagates_exceptions () =
  with_pool 4 (fun pool ->
      check_bool "raises" true
        (try
           ignore (Exec.Pool.map pool (fun i -> if i = 13 then raise (Boom i) else i)
                     (Array.init 40 (fun i -> i)));
           false
         with Boom 13 -> true);
      (* The pool survives a failed batch. *)
      check_int "still works" 10
        (Array.fold_left ( + ) 0 (Exec.Pool.map pool (fun x -> x) (Array.init 5 (fun i -> i)))))

let test_nested_maps_do_not_deadlock () =
  (* More in-flight batches than domains: the caller of an inner map
     helps drain the queue instead of deadlocking. *)
  with_pool 2 (fun pool ->
      let out =
        Exec.Pool.map pool
          (fun i ->
            Array.fold_left ( + ) 0
              (Exec.Pool.map pool (fun j -> (10 * i) + j) (Array.init 8 (fun j -> j))))
          (Array.init 6 (fun i -> i))
      in
      Alcotest.(check (array int)) "nested sums"
        (Array.init 6 (fun i -> (80 * i) + 28))
        out)

let test_sequential_pool_inline () =
  let out = Exec.Pool.map Exec.Pool.sequential (fun x -> x + 1) (Array.init 9 (fun i -> i)) in
  Alcotest.(check (array int)) "inline map" (Array.init 9 (fun i -> i + 1)) out;
  check_int "size 1" 1 (Exec.Pool.size Exec.Pool.sequential)

(* ------------------------------------------------------------------ *)
(* Reports *)

let test_report_capture_buffers_output () =
  let r =
    Harness.Report.capture (fun () ->
        Harness.Report.printf "hello %d\n" 42;
        Harness.Report.text "world";
        Harness.Report.result "answer" "42")
  in
  Alcotest.(check string) "buffered" "hello 42\nworld\n" (Harness.Report.render r);
  Alcotest.(check (list (pair string string)))
    "results" [ ("answer", "42") ] (Harness.Report.results r)

let test_report_capture_nests () =
  let inner = ref None in
  let outer =
    Harness.Report.capture (fun () ->
        Harness.Report.text "before";
        inner := Some (Harness.Report.capture (fun () -> Harness.Report.text "nested"));
        Harness.Report.text "after")
  in
  Alcotest.(check string) "outer unpolluted" "before\nafter\n"
    (Harness.Report.render outer);
  Alcotest.(check string) "inner captured" "nested\n"
    (Harness.Report.render (Option.get !inner))

(* ------------------------------------------------------------------ *)
(* Determinism: parallel simulation results are exactly sequential ones *)

let outcome_quad ~pool ~base_seed spec ~duration =
  Harness.Scenario.averaged ~pool ~base_seed ~runs:4 ~factory:Harness.Ccas.cubic
    ~duration spec

let check_exact_quad label (u1, d1, l1, t1) (u2, d2, l2, t2) =
  check_bool (label ^ ": utilization bit-identical") true (u1 = u2);
  check_bool (label ^ ": delay bit-identical") true (d1 = d2);
  check_bool (label ^ ": loss bit-identical") true (l1 = l2);
  check_bool (label ^ ": throughput bit-identical") true (t1 = t2)

let test_averaged_deterministic_wired () =
  let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
  with_pool 4 (fun pool ->
      let seq = outcome_quad ~pool:Exec.Pool.sequential ~base_seed:5 spec ~duration:4.0 in
      let par = outcome_quad ~pool ~base_seed:5 spec ~duration:4.0 in
      check_exact_quad "wired" seq par)

let test_averaged_deterministic_lte () =
  let trace = Traces.Lte.generate ~seed:11 ~duration:4.0 Traces.Lte.Walking in
  let spec = Harness.Scenario.make_spec ~loss_p:0.01 trace in
  with_pool 4 (fun pool ->
      let seq = outcome_quad ~pool:Exec.Pool.sequential ~base_seed:17 spec ~duration:4.0 in
      let par = outcome_quad ~pool ~base_seed:17 spec ~duration:4.0 in
      check_exact_quad "lte" seq par)

(* Fault-injected runs obey the same contract: the injector draws from
   keyed rng streams, so an impaired scenario is bit-identical at any
   pool size, on both wired and trace-driven (LTE) links. *)
let test_averaged_deterministic_impaired () =
  let impair =
    Faults.Spec.of_string_exn "gilbert+reorder+jitter+outage:at=1,for=0.5"
  in
  let wired = Harness.Scenario.make_spec ~impair (Traces.Rate.constant 24.0) in
  let lte =
    Harness.Scenario.make_spec ~impair
      (Traces.Lte.generate ~seed:11 ~duration:4.0 Traces.Lte.Walking)
  in
  with_pool 4 (fun pool ->
      List.iter
        (fun (label, spec) ->
          let seq =
            outcome_quad ~pool:Exec.Pool.sequential ~base_seed:23 spec
              ~duration:4.0
          in
          let par = outcome_quad ~pool ~base_seed:23 spec ~duration:4.0 in
          check_exact_quad label seq par)
        [ ("impaired wired", wired); ("impaired lte", lte) ])

let test_evaluate_deterministic () =
  (* RL evaluation rollouts fan episodes across the pool; the summary
     must not depend on pool size. *)
  let outcome =
    Rlcc.Train.run
      { Rlcc.Train.default_config with Rlcc.Train.episodes = 3; seed = 71 }
  in
  let seq = Rlcc.Train.evaluate ~pool:Exec.Pool.sequential ~episodes:6 outcome in
  let par = with_pool 4 (fun pool -> Rlcc.Train.evaluate ~pool ~episodes:6 outcome) in
  check_bool "eval bit-identical" true (seq = par);
  check_int "episodes run" 6 seq.Rlcc.Train.episodes_run

(* Registry groups render byte-identical reports whether the experiments
   execute sequentially or fanned across domains. Run at a tiny scale so
   the test stays quick; tab6 exercises the nested trial fan-out and
   fig2b the repeated-LTE fan-out. *)
let tiny_scale =
  {
    Harness.Scale.duration = 2.0;
    runs = 2;
    safety_trials = 2;
    train_episodes = 4;
    eval_episodes = 4;
  }

let test_registry_reports_byte_identical () =
  Harness.Scale.set tiny_scale;
  Fun.protect
    ~finally:(fun () -> Harness.Scale.set Harness.Scale.quick)
    (fun () ->
      let groups = [ "tab6"; "fig2b" ] in
      (* The experiments take their pool from [Exec.Pool.default]; size
         it explicitly for each pass. *)
      let render_with domains =
        Exec.Pool.set_default_size domains;
        List.map
          (fun id ->
            match Harness.Registry.find id with
            | Some e -> Harness.Report.render (e.Harness.Registry.run ())
            | None -> Alcotest.fail ("missing group " ^ id))
          groups
      in
      let seq = render_with 1 in
      let par = render_with 4 in
      Exec.Pool.set_default_size (Exec.Pool.default_size ());
      List.iter2
        (fun a b -> Alcotest.(check string) "report bytes" a b)
        seq par;
      check_bool "reports non-empty" true (List.for_all (fun s -> s <> "") seq))

(* exp_trace's artifacts (JSONL trace, CSV exports, merged metrics) are
   byte-identical at any pool size: scenarios are tracer lanes and the
   export merges lanes in lane order, not scheduling order. *)
let test_exp_trace_artifacts_byte_identical () =
  Harness.Scale.set tiny_scale;
  Fun.protect
    ~finally:(fun () -> Harness.Scale.set Harness.Scale.quick)
    (fun () ->
      let artifacts_with size =
        with_pool size (fun pool -> Harness.Exp_trace.artifacts ~pool ())
      in
      let seq = artifacts_with 1 in
      let par = artifacts_with 4 in
      List.iter2
        (fun (name_a, a) (name_b, b) ->
          Alcotest.(check string) "artifact name" name_a name_b;
          Alcotest.(check string) (name_a ^ " bytes") a b)
        seq par;
      check_bool "trace non-empty" true
        (List.exists
           (fun (name, contents) -> name = "exp_trace.jsonl" && contents <> "")
           seq))

(* Span *structure* (lane ids, span names, nesting, counts) is part of
   the determinism contract: a profile recorded over a pool fan-out is
   byte-identical at any pool size. Durations and GC words are host
   measurements and are deliberately absent from [Obs.Span.structure]. *)
let test_span_structure_pool_independent () =
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let structure_with size =
    with_pool size (fun pool ->
        let t = Obs.Span.create () in
        let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
        ignore
          (Exec.Pool.map pool
             (fun lane ->
               Obs.Span.run t ~lane (fun () ->
                   Harness.Scenario.run_uniform ~seed:(7 + lane)
                     ~factory:Harness.Ccas.cubic ~duration:2.0 spec))
             (Array.init 3 Fun.id));
        Obs.Span.structure t)
  in
  let seq = structure_with 1 in
  let par = structure_with 4 in
  Alcotest.(check string) "span structure bytes" seq par;
  check_bool "profiles the simulator" true
    (contains "netsim.run" seq && contains "heap.push" seq);
  check_bool "all three lanes exported" true
    (List.for_all (fun l -> contains l seq) [ "lane 0"; "lane 1"; "lane 2" ])

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_preserves_order;
          Alcotest.test_case "map_list order" `Quick test_map_list_preserves_order;
          Alcotest.test_case "map_reduce order" `Quick test_map_reduce_folds_in_input_order;
          Alcotest.test_case "exceptions" `Quick test_map_propagates_exceptions;
          Alcotest.test_case "nested no deadlock" `Quick test_nested_maps_do_not_deadlock;
          Alcotest.test_case "sequential inline" `Quick test_sequential_pool_inline;
        ] );
      ( "report",
        [
          Alcotest.test_case "capture buffers" `Quick test_report_capture_buffers_output;
          Alcotest.test_case "capture nests" `Quick test_report_capture_nests;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "averaged wired" `Slow test_averaged_deterministic_wired;
          Alcotest.test_case "averaged lte" `Slow test_averaged_deterministic_lte;
          Alcotest.test_case "averaged impaired" `Slow
            test_averaged_deterministic_impaired;
          Alcotest.test_case "rl evaluate" `Slow test_evaluate_deterministic;
          Alcotest.test_case "registry reports" `Slow test_registry_reports_byte_identical;
          Alcotest.test_case "exp_trace artifacts" `Slow
            test_exp_trace_artifacts_byte_identical;
          Alcotest.test_case "span structure" `Slow
            test_span_structure_pool_independent;
        ] );
    ]
