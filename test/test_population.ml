(* Population traffic model: sampler properties, spawn determinism, and
   the arena-vs-legacy engine equivalence line. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Sampler properties *)

(* Poisson arrivals: the empirical mean inter-arrival gap converges on
   1/rate. Tolerance is loose (35%) because 400 exponential draws have
   heavy relative spread; the property is about the rate parameter
   actually steering the process, not about tight convergence. *)
let prop_poisson_iat_mean =
  QCheck.Test.make ~name:"poisson iat mean ~ 1/rate" ~count:20
    QCheck.(pair (int_range 1 1000) (float_range 5.0 200.0))
    (fun (seed, rate) ->
      let rng = Netsim.Rng.create seed in
      let n = 400 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum :=
          !sum
          +. Netsim.Population.sample_iat rng (Netsim.Population.Poisson rate)
               None ~now:0.0
      done;
      let mean = !sum /. float_of_int n in
      Float.abs (mean -. (1.0 /. rate)) < 0.35 /. rate)

(* Size samplers respect their floors: Pareto never goes below its
   scale xm, and every distribution yields at least one byte. *)
let prop_sizes_floored =
  QCheck.Test.make ~name:"size samples respect distribution floors" ~count:50
    QCheck.(pair (int_range 1 1000) (float_range 100.0 20000.0))
    (fun (seed, xm) ->
      let rng = Netsim.Rng.create seed in
      let ok = ref true in
      for _ = 1 to 200 do
        let p =
          Netsim.Population.sample_size rng
            (Netsim.Population.Pareto { xm; alpha = 1.2 })
        in
        if float_of_int p < xm then ok := false;
        let l =
          Netsim.Population.sample_size rng
            (Netsim.Population.Lognormal_size { mu = 8.0; sigma = 1.5 })
        in
        if l < 1 then ok := false
      done;
      !ok
      && Netsim.Population.sample_size rng (Netsim.Population.Fixed 777) = 777)

(* Diurnal modulation never stalls the process: the gap stays finite
   and positive even at the trough of a full-amplitude swing (the
   implementation floors the modulated rate at 5%). *)
let prop_diurnal_gap_finite =
  QCheck.Test.make ~name:"diurnal gaps stay finite and positive" ~count:50
    QCheck.(pair (int_range 1 1000) (float_range 0.0 50.0))
    (fun (seed, now) ->
      let rng = Netsim.Rng.create seed in
      let gap =
        Netsim.Population.sample_iat rng (Netsim.Population.Poisson 30.0)
          (Some { Netsim.Population.amp = 1.0; period = 10.0 })
          ~now
      in
      Float.is_finite gap && gap > 0.0)

(* ------------------------------------------------------------------ *)
(* Spawn determinism *)

(* One bounded mini population run; returns a fingerprint that is
   sensitive to every arrival instant, transfer size and completion. *)
let population_fingerprint ~predraws () =
  let sim = Netsim.Sim.create () in
  let table = Netsim.Flow_table.create ~capacity:64 ~lite:true ~sim () in
  let rate = Netsim.Units.mbps_to_bps 24.0 in
  let link =
    Netsim.Link.create ~const_rate:rate ~sim
      ~rate_fn:(fun _ -> rate)
      ~grain:0.01
      ~buffer_bytes:(Netsim.Units.kb 150)
      ~loss_p:0.0 ~rng:(Netsim.Rng.create 3)
      ~deliver:(Netsim.Flow_table.on_pkt_delivered table)
      ()
  in
  Netsim.Flow_table.attach table link;
  let rng = Netsim.Rng.create 42 in
  (* Advancing the parent stream must not move the spawned process:
     Population draws from [Rng.split_key] streams keyed on the parent
     seed alone. *)
  for _ = 1 to predraws do
    ignore (Netsim.Rng.float rng)
  done;
  let cfg = Netsim.Population.default ~rate:60.0 () in
  Netsim.Population.spawn ~table ~rng ~cfg ~until:1.5;
  Netsim.Sim.run sim ~until:3.0;
  let n = Netsim.Flow_table.flow_count table in
  let acc = ref [] in
  for h = 0 to n - 1 do
    acc :=
      ( Netsim.Flow_table.start_time table h,
        Netsim.Flow_table.delivered_bytes table h,
        Netsim.Flow_table.completion_time table h )
      :: !acc
  done;
  (n, Netsim.Sim.events sim, !acc)

(* Structural [compare] rather than [=]: unfinished flows fingerprint
   as [nan] completion times, and [nan = nan] is false. *)
let test_spawn_deterministic () =
  let a = population_fingerprint ~predraws:0 () in
  let b = population_fingerprint ~predraws:0 () in
  check_bool "identical runs are bit-identical" true (compare a b = 0)

let test_spawn_insensitive_to_parent_draws () =
  let a = population_fingerprint ~predraws:0 () in
  let b = population_fingerprint ~predraws:13 () in
  check_bool "parent draw position does not move the population" true
    (compare a b = 0)

let test_spawn_produces_flows () =
  let n, events, flows = population_fingerprint ~predraws:0 () in
  check_bool "spawned a plausible count" true (n > 30 && n < 200);
  check_bool "simulation did work" true (events > 1000);
  check_bool "some flow completed" true
    (List.exists (fun (_, _, c) -> not (Float.is_nan c)) flows);
  check_int "fingerprint covers all flows" n (List.length flows)

(* ------------------------------------------------------------------ *)
(* Arena-vs-legacy engine equivalence *)

(* Under the same seed, running a scenario's configured CCAs through
   the arena engine ([Generic] flows over Flow_table) must reproduce
   the closure engine bit for bit: same utilization, delay, loss and
   throughput. This is the line that lets the arena replace the legacy
   engine for many-flow runs without re-validating every experiment. *)
let outcome_quad o =
  ( o.Harness.Scenario.utilization,
    o.Harness.Scenario.mean_delay,
    o.Harness.Scenario.loss_rate,
    o.Harness.Scenario.throughput )

let check_engines_agree label spec ~n_flows ~duration =
  let run engine =
    Harness.Scenario.run_uniform ~seed:5 ~n_flows ~engine
      ~factory:Harness.Ccas.cubic ~duration spec
  in
  let l = run `Legacy and a = run `Arena in
  check_bool (label ^ ": outcome bit-identical") true
    (outcome_quad l = outcome_quad a);
  let delivered o =
    List.map
      (fun f -> Netsim.Flow_stats.total_acked_pkts f.Netsim.Network.stats)
      o.Harness.Scenario.summary.Netsim.Network.flows
  in
  Alcotest.(check (list int))
    (label ^ ": per-flow acked pkts") (delivered l) (delivered a);
  check_int
    (label ^ ": same logical event count")
    l.Harness.Scenario.summary.Netsim.Network.events
    a.Harness.Scenario.summary.Netsim.Network.events

let test_engines_agree_wired () =
  let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
  check_engines_agree "wired" spec ~n_flows:3 ~duration:4.0

let test_engines_agree_lte () =
  let trace = Traces.Lte.generate ~seed:11 ~duration:4.0 Traces.Lte.Walking in
  let spec = Harness.Scenario.make_spec ~loss_p:0.01 trace in
  check_engines_agree "lte" spec ~n_flows:2 ~duration:4.0

(* ------------------------------------------------------------------ *)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "population"
    [
      ( "samplers",
        qsuite
          [ prop_poisson_iat_mean; prop_sizes_floored; prop_diurnal_gap_finite ]
      );
      ( "spawn",
        [
          Alcotest.test_case "deterministic" `Quick test_spawn_deterministic;
          Alcotest.test_case "insensitive to parent draws" `Quick
            test_spawn_insensitive_to_parent_draws;
          Alcotest.test_case "produces flows" `Quick test_spawn_produces_flows;
        ] );
      ( "engine-equivalence",
        [
          Alcotest.test_case "wired" `Quick test_engines_agree_wired;
          Alcotest.test_case "lte" `Quick test_engines_agree_lte;
        ] );
    ]
