(* Tests for the online invariant checker (lib/check): the spec
   grammar (parse / to_string round-trips, canonical rendering, error
   reporting), the temporal machine semantics on synthetic event lists
   (three-valued clauses, window expiry, Run_start resets), the
   divergence bisector, and the default pack. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Grammar *)

let parses s = Check.Spec.parse s

let test_parse_always () =
  let s = parses "q-neg: always ev=enqueue & backlog>=0" in
  check_str "name" "q-neg" s.Check.Spec.name;
  (match s.Check.Spec.formula with
  | Check.Spec.Always
      [
        Check.Spec.Ev "enqueue";
        Check.Spec.Num { field = "backlog"; op = Check.Spec.Ge; value = 0.0 };
      ] ->
    ()
  | _ -> Alcotest.fail "wrong AST for always");
  check_str "canonical" "q-neg: always ev=enqueue & backlog>=0"
    (Check.Spec.to_string s)

let test_parse_never_string_clause () =
  let s = parses "no-random: never ev=drop & reason=random" in
  (match s.Check.Spec.formula with
  | Check.Spec.Never
      [
        Check.Spec.Ev "drop";
        Check.Spec.Str { field = "reason"; negated = false; value = "random" };
      ] ->
    ()
  | _ -> Alcotest.fail "wrong AST for never");
  let s = parses "no-down: always ev=fault & kind!=link_down" in
  match s.Check.Spec.formula with
  | Check.Spec.Always
      [ Check.Spec.Ev "fault"; Check.Spec.Str { negated = true; value = "link_down"; _ } ]
    ->
    ()
  | _ -> Alcotest.fail "negated string clause not parsed"

let test_parse_leads_to_windows () =
  let windows =
    [
      ("5 events", Check.Spec.{ n = 5.0; unit_ = Events });
      ("1.5 s", Check.Spec.{ n = 1.5; unit_ = Seconds });
      ("100 rtt", Check.Spec.{ n = 100.0; unit_ = Rtts });
    ]
  in
  List.iter
    (fun (wtxt, want) ->
      let s =
        parses
          (Printf.sprintf "rec: after ev=fault & kind=link_up eventually ev=ack within %s"
             wtxt)
      in
      match s.Check.Spec.formula with
      | Check.Spec.Leads_to { within; _ } ->
        check_bool ("window " ^ wtxt) true (within = want)
      | _ -> Alcotest.fail "wrong AST for leads-to")
    windows

let test_parse_after_until () =
  let s = parses "frozen: after ev=fault & kind=link_down until ev=fault & kind=link_up expect rtt>0" in
  (match s.Check.Spec.formula with
  | Check.Spec.After_until { trigger; release; expect } ->
    check_int "trigger clauses" 2 (List.length trigger);
    check_int "release clauses" 2 (List.length release);
    check_int "expect clauses" 1 (List.length expect)
  | _ -> Alcotest.fail "wrong AST for after-until");
  check_str "canonical" (Check.Spec.to_string s)
    "frozen: after ev=fault & kind=link_down until ev=fault & kind=link_up \
     expect rtt>0"

let test_parse_cycle_argmax_builtin () =
  let s = parses "argmax: always cycle_argmax" in
  match s.Check.Spec.formula with
  | Check.Spec.Always [ Check.Spec.Cycle_argmax ] -> ()
  | _ -> Alcotest.fail "builtin clause not parsed"

let test_parse_errors () =
  let rejects line =
    match Check.Spec.parse line with
    | _ -> Alcotest.fail (Printf.sprintf "accepted %S" line)
    | exception Check.Spec.Parse_error _ -> ()
  in
  rejects "no-colon always rtt>0";
  rejects "bad name!: always rtt>0";
  rejects "x: frobnicate rtt>0";
  rejects "x: always ev=not_an_event";
  rejects "x: always ev<ack";
  rejects "x: always kind<random";
  rejects "x: after ev=fault eventually ev=ack";
  rejects "x: after ev=fault eventually ev=ack within 5 parsecs";
  rejects "x: after ev=fault eventually ev=ack within -3 events";
  rejects "x: always "

let test_parse_lines_skips_comments () =
  let specs =
    Check.Spec.parse_lines
      [ ""; "# a comment"; "a: always rtt>0"; "   "; "b: never ev=drop" ]
  in
  check_int "two specs" 2 (List.length specs);
  check_str "order kept" "a"
    (List.hd specs).Check.Spec.name

(* parse . to_string = id over randomly generated specs. *)
let spec_gen =
  let open QCheck.Gen in
  let clause =
    frequency
      [
        (2, map (fun n -> Check.Spec.Ev n) (oneofl [ "ack"; "enqueue"; "drop"; "fault"; "cycle"; "mi_snapshot" ]));
        ( 3,
          let* field = oneofl [ "rtt"; "backlog"; "loss_rate"; "reward"; "value" ] in
          let* op = oneofl Check.Spec.[ Lt; Le; Gt; Ge; Eq; Ne ] in
          let* value =
            oneof
              [
                map float_of_int (int_range (-1000) 1000);
                float_range (-1e6) 1e6;
                oneofl [ 0.1; 1e-9; 1.5e8; -0.333333333333333 ];
              ]
          in
          return (Check.Spec.Num { field; op; value }) );
        ( 2,
          let* field = oneofl [ "kind"; "reason"; "chosen"; "stage"; "label" ] in
          let* negated = bool in
          let* value = oneofl [ "link_up"; "link_down"; "random"; "buffer"; "prev" ] in
          return (Check.Spec.Str { field; negated; value }) );
        (1, return Check.Spec.Cycle_argmax);
      ]
  in
  let cond = list_size (int_range 1 4) clause in
  let window =
    let* n = oneofl [ 1.0; 2.5; 100.0; 0.125; 7.75; 1000.0 ] in
    let* unit_ = oneofl Check.Spec.[ Events; Seconds; Rtts ] in
    return Check.Spec.{ n; unit_ }
  in
  let formula =
    frequency
      [
        (3, map (fun c -> Check.Spec.Always c) cond);
        (2, map (fun c -> Check.Spec.Never c) cond);
        ( 2,
          let* trigger = cond in
          let* goal = cond in
          let* within = window in
          return (Check.Spec.Leads_to { trigger; goal; within }) );
        ( 2,
          let* trigger = cond in
          let* release = cond in
          let* expect = cond in
          return (Check.Spec.After_until { trigger; release; expect }) );
      ]
  in
  let* name = oneofl [ "a"; "queue-bound"; "x_1"; "Spec.9"; "flap-recovery" ] in
  let* formula = formula in
  return Check.Spec.{ name; formula }

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse (to_string s) = s"
    (QCheck.make ~print:Check.Spec.to_string spec_gen)
    (fun s -> Check.Spec.parse (Check.Spec.to_string s) = s)

(* ------------------------------------------------------------------ *)
(* Machine semantics on synthetic event lists *)

let ack ?(t = 0.0) ?(rtt = 0.03) ?(newly_lost = 0) () =
  Obs.Event.Ack { t; flow = 0; seq = 0; rtt; newly_lost }

let enqueue ?(t = 0.0) ~backlog () =
  Obs.Event.Enqueue { t; flow = 0; seq = 0; size = 1500; backlog }

let fault ?(t = 0.0) kind =
  Obs.Event.Fault { t; flow = -1; seq = -1; kind; value = 1.0 }

let run_start ?(t = 0.0) label = Obs.Event.Run_start { t; label }

let feed specs events =
  let c = Check.Checker.create ~rtt:0.03 (Check.Spec.parse_lines specs) in
  List.iter (Check.Checker.on_event c) events;
  c

let test_always_and_inapplicable () =
  let c =
    feed
      [ "q: always ev=enqueue & backlog>=0" ]
      [
        ack ();  (* wrong event: inapplicable, not a violation *)
        enqueue ~backlog:10 ();
        enqueue ~t:1.5 ~backlog:(-1) ();  (* the violation *)
        enqueue ~backlog:0 ();
      ]
  in
  check_int "events" 4 (Check.Checker.events_seen c);
  check_int "one violation" 1 (Check.Checker.total c);
  match Check.Checker.first c with
  | Some v ->
    check_str "spec" "q" v.Check.Checker.spec;
    check_str "kind" "always" v.Check.Checker.kind;
    check_int "index" 2 v.Check.Checker.index;
    check_bool "time" true (v.Check.Checker.time = 1.5)
  | None -> Alcotest.fail "no violation recorded"

let test_never_matches () =
  let c =
    feed
      [ "no-down: never ev=fault & kind=link_down" ]
      [ fault "link_up"; fault "link_down"; fault "gilbert" ]
  in
  check_int "one violation" 1 (Check.Checker.total c);
  check_int "index" 1
    (match Check.Checker.first c with Some v -> v.Check.Checker.index | None -> -1)

let test_leads_to_event_window () =
  (* goal inside the window: clean *)
  let clean =
    feed
      [ "rec: after ev=fault & kind=link_up eventually ev=ack within 3 events" ]
      [ fault "link_up"; enqueue ~backlog:0 (); ack () ]
  in
  check_int "clean" 0 (Check.Checker.total clean);
  (* no goal within 3 checked events: one violation at expiry *)
  let dirty =
    feed
      [ "rec: after ev=fault & kind=link_up eventually ev=ack within 3 events" ]
      [
        fault "link_up";
        enqueue ~backlog:0 ();
        enqueue ~backlog:0 ();
        enqueue ~backlog:0 ();
        enqueue ~backlog:0 ();  (* index 4: window of 3 events expired *)
        ack ();
      ]
  in
  check_int "one violation" 1 (Check.Checker.total dirty);
  check_int "fires at expiry" 4
    (match Check.Checker.first dirty with Some v -> v.Check.Checker.index | None -> -1)

let test_leads_to_rtt_window_and_rearm () =
  (* 0.03 rtt base, window 2 rtt = 0.06s of sim time *)
  let c =
    feed
      [ "rec: after ev=fault & kind=link_up eventually ev=ack within 2 rtt" ]
      [
        fault ~t:0.0 "link_up";
        ack ~t:0.05 ();  (* inside: clean, disarms *)
        fault ~t:0.10 "link_up";
        enqueue ~t:0.20 ~backlog:0 ();  (* 0.1s > 0.06s: violation, disarm *)
        ack ~t:0.21 ();
      ]
  in
  check_int "one violation" 1 (Check.Checker.total c);
  check_int "index" 3
    (match Check.Checker.first c with Some v -> v.Check.Checker.index | None -> -1)

let test_run_start_resets_obligations () =
  (* A pending eventually must not fire across a run boundary (weak
     finite-trace semantics), nor at end of stream. *)
  let c =
    feed
      [ "rec: after ev=fault & kind=link_up eventually ev=ack within 2 events" ]
      [
        fault "link_up";
        run_start "episode-2";
        enqueue ~backlog:0 ();
        enqueue ~backlog:0 ();
        enqueue ~backlog:0 ();
        fault "link_up";  (* pending at end of stream *)
      ]
  in
  check_int "no violation" 0 (Check.Checker.total c)

let test_after_until () =
  (* While the link is down, acked packets must not report losses;
     release on link_up (acks after the release are unconstrained). *)
  let spec =
    "frozen: after ev=fault & kind=link_down until ev=fault & kind=link_up \
     expect newly_lost<1"
  in
  let clean =
    feed [ spec ]
      [ fault "link_down"; ack (); fault "link_up"; ack ~newly_lost:5 () ]
  in
  check_int "clean" 0 (Check.Checker.total clean);
  let dirty =
    feed [ spec ]
      [
        fault "link_down";
        ack ~newly_lost:2 ();
        ack ~newly_lost:3 ();
        fault "link_up";
        ack ~newly_lost:1 ();
      ]
  in
  check_int "two violations" 2 (Check.Checker.total dirty);
  check_int "first index" 1
    (match Check.Checker.first dirty with Some v -> v.Check.Checker.index | None -> -1)

let test_violation_events_not_reevaluated () =
  (* The checker's own verdicts pass through the stream: counted in the
     index, never fed back to the machines. *)
  let c =
    feed
      [ "no-viol: never ev=violation" ]
      [
        Obs.Event.Violation
          { t = 0.0; name = "x"; kind = "always"; index = 0; detail = "d" };
        ack ();
      ]
  in
  check_int "counted" 2 (Check.Checker.events_seen c);
  check_int "not evaluated" 0 (Check.Checker.total c)

let test_raise_and_report () =
  let c = feed [ "pos: always ev=ack & rtt>0" ] [ ack ~rtt:(-1.0) () ] in
  check_bool "raises" true
    (try
       Check.Checker.raise_if_violated c;
       false
     with Check.Checker.Violation_error { spec = "pos"; index = 0; count = 1; _ } ->
       true);
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let r = Check.Checker.report c in
  check_bool "report names the spec" true (contains "[always] pos" r);
  check_bool "report counts" true (contains "1 violation(s)" r)

(* ------------------------------------------------------------------ *)
(* Bisector *)

let lines l = Array.of_list l

let test_bisect_identical () =
  match Check.Bisect.first_divergence (lines [ "a"; "b"; "c" ]) (lines [ "a"; "b"; "c" ]) with
  | Check.Bisect.Identical 3 -> ()
  | _ -> Alcotest.fail "equal streams not identical"

let test_bisect_first_difference () =
  List.iter
    (fun n ->
      let a = Array.init 100 (fun i -> Printf.sprintf "event %d" i) in
      let b = Array.copy a in
      b.(n) <- b.(n) ^ " diverged";
      match Check.Bisect.first_divergence a b with
      | Check.Bisect.Diverged { index; a = Some la; b = Some lb } ->
        check_int "index" n index;
        check_bool "lines differ" true (la <> lb)
      | _ -> Alcotest.fail "divergence not found")
    [ 0; 1; 42; 99 ]

let test_bisect_length_mismatch () =
  let a = lines [ "a"; "b"; "c" ] in
  let b = lines [ "a"; "b" ] in
  (match Check.Bisect.first_divergence a b with
  | Check.Bisect.Diverged { index = 2; a = Some "c"; b = None } -> ()
  | _ -> Alcotest.fail "prefix-equal length mismatch not reported");
  match Check.Bisect.first_divergence (lines []) (lines []) with
  | Check.Bisect.Identical 0 -> ()
  | _ -> Alcotest.fail "two empty streams should be identical"

let test_bisect_report_window () =
  let a = Array.init 10 (fun i -> Printf.sprintf "ev%d" i) in
  let b = Array.copy a in
  b.(5) <- "ev5'";
  let r =
    Check.Bisect.report ~radius:2 ~label_a:"A" ~label_b:"B" a b
      (Check.Bisect.first_divergence a b)
  in
  check_bool "headline" true
    (String.length r > 0
    && String.sub r 0 (String.length "DIVERGED at event 5") = "DIVERGED at event 5")

(* ------------------------------------------------------------------ *)
(* Default pack and CSV *)

let test_default_pack () =
  let pack = Check.Spec.default_pack ~buffer_bytes:150_000 () in
  Alcotest.(check (list string))
    "names" Check.Spec.default_pack_names
    (List.map (fun s -> s.Check.Spec.name) pack);
  (* Round-trips through its own grammar. *)
  List.iter
    (fun s ->
      check_bool (s.Check.Spec.name ^ " round-trips") true
        (Check.Spec.parse (Check.Spec.to_string s) = s))
    pack;
  (* Clean on a short wired cubic run. *)
  let spec = Harness.Scenario.make_spec (Traces.Rate.constant 24.0) in
  let c =
    Check.Checker.create ~rtt:spec.Harness.Scenario.rtt
      (Check.Spec.default_pack ~buffer_bytes:spec.Harness.Scenario.buffer_bytes ())
  in
  let tracer = Obs.Trace.create ~ring_capacity:1024 () in
  Obs.Trace.run tracer ~observer:(Check.Checker.on_event c) (fun () ->
      ignore
        (Harness.Scenario.run_uniform ~factory:Harness.Ccas.cubic ~duration:1.0
           spec));
  check_bool "saw events" true (Check.Checker.events_seen c > 0);
  check_int "clean" 0 (Check.Checker.total c)

let test_violation_csv_row () =
  let buf = Buffer.create 64 in
  Obs.Event.to_csv_row ~lane:0 buf
    (Obs.Event.Violation
       { t = 1.0; name = "q"; kind = "always"; index = 7; detail = "failed" });
  let row = Buffer.contents buf in
  let cells = String.split_on_char ',' (String.trim row) in
  check_int "cell count" Obs.Event.csv_columns (List.length cells);
  check_str "index cell" "7" (List.nth cells 35)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "check"
    [
      ( "spec grammar",
        [
          Alcotest.test_case "always" `Quick test_parse_always;
          Alcotest.test_case "string clauses" `Quick test_parse_never_string_clause;
          Alcotest.test_case "leads-to windows" `Quick test_parse_leads_to_windows;
          Alcotest.test_case "after-until" `Quick test_parse_after_until;
          Alcotest.test_case "cycle_argmax" `Quick test_parse_cycle_argmax_builtin;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "spec files" `Quick test_parse_lines_skips_comments;
        ] );
      ("spec round-trip", qsuite [ prop_roundtrip ]);
      ( "machine semantics",
        [
          Alcotest.test_case "always + inapplicable" `Quick test_always_and_inapplicable;
          Alcotest.test_case "never" `Quick test_never_matches;
          Alcotest.test_case "leads-to event window" `Quick test_leads_to_event_window;
          Alcotest.test_case "leads-to rtt window" `Quick test_leads_to_rtt_window_and_rearm;
          Alcotest.test_case "run_start resets" `Quick test_run_start_resets_obligations;
          Alcotest.test_case "after-until" `Quick test_after_until;
          Alcotest.test_case "verdicts not re-fed" `Quick test_violation_events_not_reevaluated;
          Alcotest.test_case "raise + report" `Quick test_raise_and_report;
        ] );
      ( "bisector",
        [
          Alcotest.test_case "identical" `Quick test_bisect_identical;
          Alcotest.test_case "first difference" `Quick test_bisect_first_difference;
          Alcotest.test_case "length mismatch" `Quick test_bisect_length_mismatch;
          Alcotest.test_case "report" `Quick test_bisect_report_window;
        ] );
      ( "default pack",
        [
          Alcotest.test_case "pack + clean run" `Quick test_default_pack;
          Alcotest.test_case "violation csv row" `Quick test_violation_csv_row;
        ] );
    ]
