(* Report sink discipline under the domain pool: captures nest (the
   outer sink is restored), a helping domain never leaks lines across
   experiments, and [printf] outside any capture still reaches stdout. *)

let check_string = Alcotest.(check string)

let with_pool size f =
  let pool = Exec.Pool.create ~size () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) (fun () -> f pool)

(* Nested capture inside a pool task: the task's outer capture gets its
   lines back after the inner capture ends. *)
let test_nested_capture_in_pool_task_restores_outer () =
  with_pool 4 (fun pool ->
      let rendered =
        Exec.Pool.map pool
          (fun i ->
            let inner = ref None in
            let outer =
              Harness.Report.capture (fun () ->
                  Harness.Report.printf "outer %d before\n" i;
                  inner :=
                    Some
                      (Harness.Report.capture (fun () ->
                           Harness.Report.printf "inner %d\n" i));
                  Harness.Report.printf "outer %d after\n" i)
            in
            (Harness.Report.render outer,
             Harness.Report.render (Option.get !inner)))
          (Array.init 8 Fun.id)
      in
      Array.iteri
        (fun i (outer, inner) ->
          check_string "outer restored"
            (Printf.sprintf "outer %d before\nouter %d after\n" i i)
            outer;
          check_string "inner isolated" (Printf.sprintf "inner %d\n" i) inner)
        rendered)

(* A capture that fans out on the pool keeps its own sink even though
   the calling domain helps run other tasks (which install their own
   captures) while waiting for the batch. *)
let test_capture_survives_helping_the_pool () =
  with_pool 2 (fun pool ->
      let inners = ref [||] in
      let outer =
        Harness.Report.capture (fun () ->
            Harness.Report.text "start";
            inners :=
              Exec.Pool.map pool
                (fun i ->
                  Harness.Report.capture (fun () ->
                      Harness.Report.printf "task %d\n" i))
                (Array.init 8 Fun.id);
            Harness.Report.text "end")
      in
      check_string "outer unpolluted by helped tasks" "start\nend\n"
        (Harness.Report.render outer);
      Array.iteri
        (fun i r ->
          check_string "task lines in task report"
            (Printf.sprintf "task %d\n" i)
            (Harness.Report.render r))
        !inners)

(* Outside any capture, printf falls back to stdout (the seed
   behaviour for direct CLI use). Checked by swapping stdout's fd. *)
let test_printf_outside_capture_reaches_stdout () =
  let file = Filename.temp_file "report_stdout" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      flush stdout;
      let saved = Unix.dup Unix.stdout in
      let fd =
        Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
      in
      Unix.dup2 fd Unix.stdout;
      Unix.close fd;
      Fun.protect
        ~finally:(fun () ->
          flush stdout;
          Unix.dup2 saved Unix.stdout;
          Unix.close saved)
        (fun () ->
          Harness.Report.printf "direct %d\n" 7;
          flush stdout);
      let ic = open_in file in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check_string "reached stdout" "direct 7\n" contents)

let () =
  Alcotest.run "report"
    [
      ( "sink",
        [
          Alcotest.test_case "nested capture in pool task" `Quick
            test_nested_capture_in_pool_task_restores_outer;
          Alcotest.test_case "capture survives helping" `Quick
            test_capture_survives_helping_the_pool;
          Alcotest.test_case "printf outside capture" `Quick
            test_printf_outside_capture_reaches_stdout;
        ] );
    ]
