(* Tests for lib/faults: channel state machines (Gilbert-Elliott
   stationary loss, reorder displacement bound), the --impair spec
   parser, the link-level shapers, the fault trace category, and the
   end-to-end dup-ACK interaction with loss-based CCAs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let mk_pkt seq =
  {
    Netsim.Packet.flow = 0;
    seq;
    size = 1500;
    sent_at = 0.0;
    delivered_at_send = 0;
    corrupt = false;
  }

let channel ?from_ ?until ~seed kind =
  Faults.Channel.create ~rng:(Netsim.Rng.create seed) ?from_ ?until kind

(* ------------------------------------------------------------------ *)
(* Gilbert-Elliott: empirical loss matches the stationary rate *)

(* The chain spends pi_bad = p_gb / (p_gb + p_bg) of its packets in the
   bad state, so with p_good = 0 the long-run loss rate is
   pi_bad * p_bad. Burst correlation inflates the variance well beyond
   a Bernoulli's, hence the loose relative + absolute tolerance. *)
let prop_gilbert_stationary =
  QCheck.Test.make ~name:"gilbert empirical loss ~ stationary rate" ~count:15
    QCheck.(
      quad small_int (float_range 0.005 0.05) (float_range 0.1 0.5)
        (float_range 0.3 1.0))
    (fun (seed, p_gb, p_bg, p_bad) ->
      let n = 150_000 in
      let ch =
        channel ~seed
          (Faults.Channel.Gilbert { p_gb; p_bg; p_good = 0.0; p_bad })
      in
      let dropped = ref 0 in
      for i = 0 to n - 1 do
        if Faults.Channel.apply ch ~now:0.0 (mk_pkt i) = [] then incr dropped
      done;
      let expected = p_gb /. (p_gb +. p_bg) *. p_bad in
      let got = float_of_int !dropped /. float_of_int n in
      Float.abs (got -. expected) <= (0.3 *. expected) +. 0.01)

(* ------------------------------------------------------------------ *)
(* Reorder: bounded displacement, no loss *)

(* Feed seq 0..n-1 through a reorder channel and record the emission
   order: every packet must come out (after a final flush) and no
   packet may be displaced more than [depth] positions backwards. *)
let prop_reorder_bounded =
  QCheck.Test.make ~name:"reorder displaces at most depth, loses nothing"
    ~count:50
    QCheck.(triple small_int (float_range 0.01 0.3) (int_range 1 6))
    (fun (seed, p, depth) ->
      let n = 500 in
      let ch =
        channel ~seed (Faults.Channel.Reorder { p; depth; max_hold = 1000.0 })
      in
      let out = ref [] in
      let emit = List.iter (fun (pkt, _) -> out := pkt.Netsim.Packet.seq :: !out) in
      for i = 0 to n - 1 do
        emit (Faults.Channel.apply ch ~now:0.0 (mk_pkt i))
      done;
      emit (Faults.Channel.flush ch);
      let out = Array.of_list (List.rev !out) in
      Array.length out = n
      && List.sort compare (Array.to_list out) = List.init n Fun.id
      &&
      let ok = ref true in
      Array.iteri (fun pos seq -> if pos - seq > depth then ok := false) out;
      !ok)

let test_reorder_stale_hold_flushes () =
  (* A held packet whose countdown never completes is released once
     max_hold elapses, ahead of the packet that triggered the check. *)
  let ch =
    channel ~seed:1 (Faults.Channel.Reorder { p = 1.0; depth = 5; max_hold = 0.1 })
  in
  check_bool "first packet held" true
    (Faults.Channel.apply ch ~now:0.0 (mk_pkt 0) = []);
  let out = Faults.Channel.apply ch ~now:0.2 (mk_pkt 1) in
  let seqs = List.map (fun (p, _) -> p.Netsim.Packet.seq) out in
  (* Packet 0 is flushed stale; packet 1 may itself be held (p = 1). *)
  check_bool "stale packet released first" true (List.hd seqs = 0)

(* ------------------------------------------------------------------ *)
(* Duplicate / corrupt / jitter channel mechanics *)

let test_duplicate_emits_two_copies () =
  let ch = channel ~seed:2 (Faults.Channel.Duplicate { p = 1.0 }) in
  let out = Faults.Channel.apply ch ~now:0.0 (mk_pkt 7) in
  check_int "two copies" 2 (List.length out);
  List.iter (fun (p, _) -> check_int "same seq" 7 p.Netsim.Packet.seq) out

let test_corrupt_marks_packet () =
  let ch = channel ~seed:3 (Faults.Channel.Corrupt { p = 1.0 }) in
  match Faults.Channel.apply ch ~now:0.0 (mk_pkt 0) with
  | [ (p, _) ] -> check_bool "corrupt flag set" true p.Netsim.Packet.corrupt
  | _ -> Alcotest.fail "corrupt channel must emit exactly one copy"

let test_jitter_delays_within_bound () =
  let ch = channel ~seed:4 (Faults.Channel.Jitter { max_delay = 0.01 }) in
  for i = 0 to 99 do
    match Faults.Channel.apply ch ~now:0.0 (mk_pkt i) with
    | [ (_, d) ] -> check_bool "delay in [0, max)" true (d >= 0.0 && d < 0.01)
    | _ -> Alcotest.fail "jitter never drops or duplicates"
  done

let test_window_gates_channel () =
  let ch =
    channel ~seed:5 ~from_:1.0 ~until:2.0 (Faults.Channel.Bernoulli { p = 1.0 })
  in
  check_bool "before window: passes" true
    (List.length (Faults.Channel.apply ch ~now:0.5 (mk_pkt 0)) = 1);
  check_bool "inside window: dropped" true
    (Faults.Channel.apply ch ~now:1.5 (mk_pkt 1) = []);
  check_bool "after window: passes" true
    (List.length (Faults.Channel.apply ch ~now:2.5 (mk_pkt 2)) = 1)

(* ------------------------------------------------------------------ *)
(* Spec parser *)

let roundtrip s =
  let spec = Faults.Spec.of_string_exn s in
  check_string ("canonical form of " ^ s)
    (Faults.Spec.to_string spec)
    (Faults.Spec.to_string (Faults.Spec.of_string_exn (Faults.Spec.to_string spec)));
  check_bool
    ("structural round-trip of " ^ s)
    true
    (Faults.Spec.of_string_exn (Faults.Spec.to_string spec) = spec)

let test_spec_roundtrip () =
  List.iter roundtrip
    [
      "clean";
      "gilbert";
      "gilbert:p_gb=0.01,p_bg=0.3";
      "gilbert:from=8,until=10";
      "reorder:p=0.1,depth=2+jitter";
      "gilbert+reorder+dup+corrupt+jitter";
      "outage:at=8,for=2";
      "clamp:from=5,until=15,factor=0.25";
      "flap:period=6,duty=0.85";
      "bernoulli:p=0.02+flap:period=4,duty=0.5+outage:at=1,for=0.25";
    ];
  (* named profiles round-trip too *)
  List.iter
    (fun (_, spec) -> roundtrip (Faults.Spec.to_string spec))
    Faults.Spec.robustness_profiles

let test_spec_errors () =
  let rejects s =
    check_bool ("rejects " ^ s) true
      (match Faults.Spec.of_string s with Error _ -> true | Ok _ -> false)
  in
  List.iter rejects
    [
      "bogus";
      "gilbert:wat=1";
      "reorder:p=zzz";
      "outage:at";
      "gilbert+bogus";
      "jitter:max_delay=0.01" (* the key is max= *);
    ];
  (* Errors pinpoint the offending item ('+'-position and text) and,
     for an unknown key, list the keys the item accepts. *)
  let error_of s =
    match Faults.Spec.of_string s with
    | Error m -> m
    | Ok _ -> Alcotest.fail ("expected an error for " ^ s)
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let msg = error_of "gilbert+jitter:max_delay=0.01" in
  check_bool "names the item position" true (contains msg "spec item 2");
  check_bool "quotes the offending item" true
    (contains msg "\"jitter:max_delay=0.01\"");
  check_bool "hints the expected keys" true
    (contains msg "expected one of" && contains msg "max");
  let msg = error_of "bernoulli:p=0.1+outage:at=1,wat=2" in
  check_bool "position counts from 1" true (contains msg "spec item 2");
  check_bool "unknown key is quoted" true (contains msg "\"wat\"")

let test_spec_semantics () =
  check_bool "clean is empty" true
    (Faults.Spec.is_empty (Faults.Spec.of_string_exn "clean"));
  check_bool "empty string is clean" true
    (Faults.Spec.is_empty (Faults.Spec.of_string_exn ""));
  check_bool "gilbert alone cannot reorder" false
    (Faults.Spec.may_reorder (Faults.Spec.of_string_exn "gilbert"));
  List.iter
    (fun s ->
      check_bool (s ^ " may reorder") true
        (Faults.Spec.may_reorder (Faults.Spec.of_string_exn s)))
    [ "reorder"; "dup"; "jitter" ]

(* ------------------------------------------------------------------ *)
(* Link-rate shapers *)

let shape s ~now rate =
  let inj =
    Faults.Injector.create ~rng:(Netsim.Rng.create 1)
      (Faults.Spec.of_string_exn s)
  in
  (Faults.Injector.hooks inj).Netsim.Link.shape_rate ~now rate

let check_rate label want got =
  check_bool (Printf.sprintf "%s (want %g, got %g)" label want got) true
    (want = got)

let test_shaper_outage () =
  check_rate "before outage" 1e6 (shape "outage:at=8,for=2" ~now:7.9 1e6);
  check_rate "during outage" 0.0 (shape "outage:at=8,for=2" ~now:8.0 1e6);
  check_rate "late in outage" 0.0 (shape "outage:at=8,for=2" ~now:9.9 1e6);
  check_rate "after outage" 1e6 (shape "outage:at=8,for=2" ~now:10.0 1e6)

let test_shaper_clamp () =
  let s = "clamp:from=5,until=15,factor=0.25" in
  check_rate "before clamp" 1e6 (shape s ~now:4.9 1e6);
  check_rate "inside clamp" 2.5e5 (shape s ~now:10.0 1e6);
  check_rate "after clamp" 1e6 (shape s ~now:15.0 1e6)

let test_shaper_flap () =
  (* period 6, duty 0.5: up for the first 3 s of each period. *)
  let s = "flap:period=6,duty=0.5" in
  check_rate "up phase" 1e6 (shape s ~now:2.0 1e6);
  check_rate "down phase" 0.0 (shape s ~now:4.0 1e6);
  check_rate "next period up" 1e6 (shape s ~now:7.0 1e6);
  check_rate "next period down" 0.0 (shape s ~now:10.5 1e6)

let test_injector_stats () =
  let inj =
    Faults.Injector.create ~rng:(Netsim.Rng.create 1)
      (Faults.Spec.of_string_exn "bernoulli:p=1")
  in
  let hooks = Faults.Injector.hooks inj in
  for i = 0 to 9 do
    check_bool "all dropped" true
      (hooks.Netsim.Link.ingress ~now:0.0 (mk_pkt i) = [])
  done;
  check_bool "stats count offered and affected" true
    (Faults.Injector.stats inj
    = [ ("bernoulli.offered", 10); ("bernoulli.affected", 10) ])

(* ------------------------------------------------------------------ *)
(* Fault trace category: emitted under impairment, JSONL round-trips *)

let test_fault_trace_roundtrip () =
  let tracer =
    Obs.Trace.create ~categories:[ Obs.Category.Fault; Obs.Category.Run ] ()
  in
  let impair = Faults.Spec.of_string_exn "gilbert+reorder+outage:at=1,for=0.5" in
  let spec = Harness.Scenario.make_spec ~impair (Traces.Rate.constant 24.0) in
  ignore
    (Obs.Trace.run tracer ~lane:0 (fun () ->
         Harness.Scenario.run_uniform ~seed:3 ~factory:Harness.Ccas.cubic
           ~duration:3.0 spec));
  let out = Obs.Trace.to_jsonl tracer in
  let kinds = Hashtbl.create 8 in
  let faults = ref 0 in
  String.split_on_char '\n' out
  |> List.iter (fun line ->
         if String.trim line <> "" then begin
           let v =
             match Obs.Json.parse line with
             | Ok v -> v
             | Error m -> Alcotest.fail ("bad JSONL line: " ^ m)
           in
           if Obs.Json.member "manifest" v <> None then
             (* The provenance header line; validated in test_obs. *)
             ()
           else
           let ev =
             match Option.bind (Obs.Json.member "ev" v) Obs.Json.str with
             | Some ev -> ev
             | None -> Alcotest.fail "line without ev"
           in
           check_bool ("known event " ^ ev) true
             (List.mem ev Obs.Event.all_names);
           if ev = "fault" then begin
             incr faults;
             (match Option.bind (Obs.Json.member "kind" v) Obs.Json.str with
             | Some k -> Hashtbl.replace kinds k ()
             | None -> Alcotest.fail "fault event without kind");
             check_bool "fault has numeric value" true
               (Option.bind (Obs.Json.member "value" v) Obs.Json.num <> None)
           end
         end);
  check_bool "saw fault events" true (!faults > 0);
  List.iter
    (fun k -> check_bool ("saw kind " ^ k) true (Hashtbl.mem kinds k))
    [ "gilbert"; "reorder"; "link_down"; "link_up" ]

(* ------------------------------------------------------------------ *)
(* End-to-end: reordering vs dup-ACK accounting *)

(* Vegas keeps the standing queue tiny, so on a clean 24 Mbit/s link it
   loses nothing. Under pure reordering (depth 2) a TCP-style threshold
   of 3 absorbs every displacement -- zero losses still -- while exact
   gap detection (threshold 1) misreads each held packet as a loss. *)
let vegas_loss ~dup_thresh =
  let impair = Faults.Spec.of_string_exn "reorder:p=0.05,depth=2" in
  let spec =
    Harness.Scenario.make_spec ~impair ~dup_thresh (Traces.Rate.constant 24.0)
  in
  let o =
    Harness.Scenario.run_uniform ~seed:5 ~factory:Harness.Ccas.vegas
      ~duration:4.0 spec
  in
  o.Harness.Scenario.loss_rate

let test_dupack_absorbs_bounded_reordering () =
  check_bool "threshold 3 sees no loss" true (vegas_loss ~dup_thresh:3 = 0.0);
  check_bool "threshold 1 misreads reordering as loss" true
    (vegas_loss ~dup_thresh:1 > 0.0)

(* The loss-based CCA scenario: reordering must demonstrably trigger
   dup-ACK handling in CUBIC -- spurious window cuts at threshold 1
   show up as extra detected losses and lower throughput. *)
let cubic_outcome ~dup_thresh =
  let impair = Faults.Spec.of_string_exn "reorder:p=0.08,depth=2" in
  let spec =
    Harness.Scenario.make_spec ~impair ~dup_thresh (Traces.Rate.constant 24.0)
  in
  Harness.Scenario.run_uniform ~seed:5 ~factory:Harness.Ccas.cubic ~duration:4.0
    spec

let test_cubic_reordering_triggers_dupack_handling () =
  let o1 = cubic_outcome ~dup_thresh:1 in
  let o3 = cubic_outcome ~dup_thresh:3 in
  check_bool "threshold 1 detects more losses" true
    (o1.Harness.Scenario.loss_rate > o3.Harness.Scenario.loss_rate);
  check_bool "threshold 3 sustains more throughput" true
    (o3.Harness.Scenario.throughput > o1.Harness.Scenario.throughput)

(* Corruption consumes capacity but yields no ACKs: the sender observes
   it as loss even though the link delivered the bytes. *)
let test_corruption_counts_as_loss () =
  let impair = Faults.Spec.of_string_exn "corrupt:p=0.05" in
  let spec = Harness.Scenario.make_spec ~impair (Traces.Rate.constant 24.0) in
  let o =
    Harness.Scenario.run_uniform ~seed:7 ~factory:Harness.Ccas.vegas
      ~duration:4.0 spec
  in
  check_bool "corruption surfaces as sender-visible loss" true
    (o.Harness.Scenario.loss_rate > 0.01)

let () =
  Alcotest.run "faults"
    [
      ( "channels",
        [
          QCheck_alcotest.to_alcotest prop_gilbert_stationary;
          QCheck_alcotest.to_alcotest prop_reorder_bounded;
          Alcotest.test_case "stale hold flushes" `Quick
            test_reorder_stale_hold_flushes;
          Alcotest.test_case "duplicate" `Quick test_duplicate_emits_two_copies;
          Alcotest.test_case "corrupt" `Quick test_corrupt_marks_packet;
          Alcotest.test_case "jitter" `Quick test_jitter_delays_within_bound;
          Alcotest.test_case "window" `Quick test_window_gates_channel;
        ] );
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "semantics" `Quick test_spec_semantics;
        ] );
      ( "shapers",
        [
          Alcotest.test_case "outage" `Quick test_shaper_outage;
          Alcotest.test_case "clamp" `Quick test_shaper_clamp;
          Alcotest.test_case "flap" `Quick test_shaper_flap;
          Alcotest.test_case "injector stats" `Quick test_injector_stats;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fault JSONL round-trip" `Slow
            test_fault_trace_roundtrip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "dup-ACK absorbs reordering" `Slow
            test_dupack_absorbs_bounded_reordering;
          Alcotest.test_case "cubic under reordering" `Slow
            test_cubic_reordering_triggers_dupack_handling;
          Alcotest.test_case "corruption is loss" `Slow
            test_corruption_counts_as_loss;
        ] );
    ]
