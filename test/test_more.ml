(* Additional behaviour tests across libraries: RTT tracker, flow-level
   RTO and cwnd limiting, trace statistics, feature extraction values,
   the Vivace state machine, telemetry series, the ideal combiner on
   flow stats, and the extension substrates (Westwood/Illinois/CoDel
   already covered elsewhere; here satellite/5G presets and scale). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let ack ?(seq = 0) ?(inflight = 10) ?(rate_sample = 1e6) ~now ~rtt () =
  {
    Netsim.Cca.now;
    seq;
    rtt;
    acked_bytes = 1500;
    inflight;
    delivered_bytes = 1500 * seq;
    rate_sample;
    newly_lost = 0;
  }

(* ------------------------------------------------------------------ *)
(* Rtt_tracker *)

let test_rtt_tracker_ewma_and_min () =
  let t = Netsim.Cca.Rtt_tracker.create () in
  Netsim.Cca.Rtt_tracker.observe t 0.1;
  check_float "first sample seeds srtt" 0.1 (Netsim.Cca.Rtt_tracker.srtt t);
  Netsim.Cca.Rtt_tracker.observe t 0.2;
  let srtt = Netsim.Cca.Rtt_tracker.srtt t in
  check_bool "ewma between samples" true (srtt > 0.1 && srtt < 0.2);
  check_float "min tracked" 0.1 (Netsim.Cca.Rtt_tracker.min_rtt t);
  check_float "last tracked" 0.2 (Netsim.Cca.Rtt_tracker.last_rtt t);
  check_int "two samples" 2 (Netsim.Cca.Rtt_tracker.samples t)

let test_rtt_tracker_defaults_before_samples () =
  let t = Netsim.Cca.Rtt_tracker.create () in
  check_float "default srtt 100ms" 0.1 (Netsim.Cca.Rtt_tracker.srtt t);
  check_float "default min 100ms" 0.1 (Netsim.Cca.Rtt_tracker.min_rtt t)

(* ------------------------------------------------------------------ *)
(* Flow-level behaviour through the simulator *)

(* A CCA that stops producing after [n] packets never sees ACKs for its
   tail if the link dies; the flow's RTO must declare them lost. *)
let test_flow_rto_fires_on_dead_link () =
  let captured = ref None in
  let cca =
    {
      Netsim.Cca.name = "probe";
      on_ack = (fun _ -> ());
      on_loss = (fun loss -> captured := Some loss.Netsim.Cca.kind);
      on_send = (fun _ -> ());
      pacing_rate = (fun ~now:_ -> 1e6);
      cwnd = (fun ~now:_ -> 4.0);
    }
  in
  (* Dead link: zero capacity, so nothing is ever delivered. *)
  let link =
    { Netsim.Network.rate_fn = (fun _ -> 0.0); grain = 0.02; const_rate = None;
      buffer_bytes = Netsim.Units.kb 150; loss_p = 0.0; aqm = `Fifo }
  in
  let flows = [ { Netsim.Network.cca; start_at = 0.0; stop_at = 5.0; rtt = 0.03 } ] in
  ignore (Netsim.Network.run ~link ~flows ~duration:5.0 ());
  check_bool "timeout loss delivered" true (!captured = Some Netsim.Cca.Timeout)

let test_flow_cwnd_limits_inflight () =
  (* cwnd = 2 with a high pacing rate: inflight can never exceed 2, so
     throughput is bounded by 2 pkts per RTT. *)
  let cca =
    {
      Netsim.Cca.name = "two";
      on_ack = (fun _ -> ());
      on_loss = (fun _ -> ());
      on_send = (fun _ -> ());
      pacing_rate = (fun ~now:_ -> 1e9);
      cwnd = (fun ~now:_ -> 2.0);
    }
  in
  let link =
    { Netsim.Network.rate_fn = (fun _ -> Netsim.Units.mbps_to_bps 100.0); const_rate = None;
      grain = 0.02; buffer_bytes = Netsim.Units.mb 1; loss_p = 0.0; aqm = `Fifo }
  in
  let flows = [ { Netsim.Network.cca; start_at = 0.0; stop_at = 5.0; rtt = 0.1 } ] in
  let s = Netsim.Network.run ~link ~flows ~duration:5.0 () in
  match s.Netsim.Network.flows with
  | [ f ] ->
    let thr = Netsim.Flow_stats.mean_throughput ~from_t:1.0 ~to_t:5.0 f.Netsim.Network.stats in
    (* 2 packets per ~100 ms = 30 kB/s; allow serialization slack. *)
    check_bool (Printf.sprintf "window-limited (%.0f B/s)" thr) true (thr < 45_000.0)
  | _ -> Alcotest.fail "one flow"

let test_flow_stats_loss_accounting () =
  (* CBR over capacity: sent = acked + lost modulo in-flight tail. *)
  let link =
    { Netsim.Network.rate_fn = (fun _ -> Netsim.Units.mbps_to_bps 10.0); const_rate = None;
      grain = 0.02; buffer_bytes = Netsim.Units.kb 30; loss_p = 0.0; aqm = `Fifo }
  in
  let flows =
    [ { Netsim.Network.cca = Netsim.Cca.constant_rate (Netsim.Units.mbps_to_bps 20.0);
        start_at = 0.0; stop_at = 4.0; rtt = 0.03 } ]
  in
  let s = Netsim.Network.run ~link ~flows ~duration:5.0 () in
  match s.Netsim.Network.flows with
  | [ f ] ->
    let st = f.Netsim.Network.stats in
    check_bool "roughly half the packets lost" true
      (Netsim.Flow_stats.loss_rate st > 0.4 && Netsim.Flow_stats.loss_rate st < 0.6)
  | _ -> Alcotest.fail "one flow"

(* ------------------------------------------------------------------ *)
(* Feature extraction values *)

let obs =
  {
    Rlcc.Features.send_rate = 2e6;
    throughput = 1e6;
    avg_rtt = 0.1;
    min_rtt = 0.05;
    rtt_gradient = 0.02;
    loss_rate = 0.3;
    ack_gap_ewma = 0.01;
    send_gap_ewma = 0.02;
    rate_norm = 4e6;
  }

let extract1 c = List.hd (Rlcc.Features.extract obs c)

let test_feature_values () =
  check_float "(iv) send rate normalised" 0.5 (extract1 Rlcc.Features.Send_rate);
  check_float "(ix) delivery normalised" 0.25 (extract1 Rlcc.Features.Delivery_rate);
  check_float "(iii) rtt ratio" 2.0 (extract1 Rlcc.Features.Rtt_ratio);
  check_float "(v) sent/acked" 2.0 (extract1 Rlcc.Features.Sent_acked_ratio);
  check_float "(vii) loss" 0.3 (extract1 Rlcc.Features.Loss_rate);
  check_float "(viii) gradient" 0.02 (extract1 Rlcc.Features.Latency_gradient)

let test_feature_clamps () =
  let hot = { obs with Rlcc.Features.rtt_gradient = 99.0; loss_rate = 5.0 } in
  check_float "gradient clamped" 2.0
    (List.hd (Rlcc.Features.extract hot Rlcc.Features.Latency_gradient));
  check_float "loss clamped" 1.0
    (List.hd (Rlcc.Features.extract hot Rlcc.Features.Loss_rate))

let test_all_candidates_have_names () =
  List.iter
    (fun c -> check_bool "named" true (String.length (Rlcc.Features.candidate_name c) > 0))
    Rlcc.Features.all_candidates

(* ------------------------------------------------------------------ *)
(* AIAD action arithmetic *)

let test_aiad_step_is_packets_per_rtt () =
  let r =
    Rlcc.Actions.apply (Rlcc.Actions.Aiad 10.0) ~rate:1e6 ~min_rtt:0.1 ~mss:1500 2.0
  in
  (* +2 packets per 100 ms = +30 kB/s. *)
  check_float "aiad step" (1e6 +. 30_000.0) r

(* ------------------------------------------------------------------ *)
(* Vivace internals *)

let test_vivace_clamp_step () =
  let v = Rlcc.Vivace.create ~omega:0.25 ~initial_rate:1e6 () in
  ignore v;
  (* The base rate can change by at most 25% per decision: drive a huge
     artificial gradient through one probe pair and check the bound. *)
  let send ~seq ~now = Rlcc.Vivace.on_send v { Netsim.Cca.now; seq; size = 1500; inflight = 4 } in
  let acknowledge ~seq ~now ~rtt = Rlcc.Vivace.on_ack v (ack ~seq ~now ~rtt ()) in
  (* Emulate a long clean run: rates should never jump more than 2x in
     one MI (doubling in Starting) nor drop below the floor. *)
  let prev_base = ref (Rlcc.Vivace.base_rate v) in
  let seq = ref 0 in
  for i = 1 to 300 do
    incr seq;
    let now = 0.01 *. float_of_int i in
    send ~seq:!seq ~now;
    acknowledge ~seq:(max 0 (!seq - 3)) ~now ~rtt:0.03;
    (* The base rate may at most double per decision (Starting) and
       never leaves [1500, max_rate]; the applied rate stays within the
       probe band of the base. *)
    let b = Rlcc.Vivace.base_rate v in
    check_bool "base bounded" true
      (b <= (!prev_base *. 2.000001) +. 1.0 && b >= 1500.0 && b <= Rlcc.Actions.max_rate);
    check_bool "applied near base or double" true
      (Rlcc.Vivace.rate v <= (b *. 2.1) +. 1.0);
    prev_base := b
  done

(* ------------------------------------------------------------------ *)
(* Telemetry utility series *)

let test_telemetry_utility_series_follows_choice () =
  let t = Libra.Telemetry.create () in
  Libra.Telemetry.record t
    { Libra.Telemetry.at = 1.0; chosen = Libra.Telemetry.Rl; u_prev = 1.0;
      u_rl = 5.0; u_cl = 2.0; x_next = 1e6 };
  Libra.Telemetry.record t
    { Libra.Telemetry.at = 2.0; chosen = Libra.Telemetry.Cl; u_prev = 1.0;
      u_rl = 0.0; u_cl = 3.0; x_next = 1e6 };
  match Libra.Telemetry.utility_series t with
  | [ (1.0, 5.0); (2.0, 3.0) ] -> ()
  | _ -> Alcotest.fail "series should carry the chosen utility"

(* ------------------------------------------------------------------ *)
(* Ideal combiner over flow stats *)

let test_ideal_utility_of_stats_grid () =
  let stats = Netsim.Flow_stats.create ~bin:0.01 () in
  for i = 1 to 400 do
    Netsim.Flow_stats.record_delivery stats ~now:(0.01 *. float_of_int i)
      ~bytes:1500 ~rtt:0.05
  done;
  let series =
    Libra.Ideal.utility_of_stats ~window:1.0 Libra.Utility.default stats ~duration:4.0
  in
  check_int "four windows" 4 (Array.length series);
  (* Constant throughput, flat RTT: equal positive utility in each bin. *)
  let u0 = snd series.(0) and u3 = snd series.(3) in
  (* The first window misses one bin-edge delivery; allow 5%. *)
  check_bool "flat utility" true (Float.abs (u0 -. u3) < 0.05 *. u3 && u0 > 0.0)

(* ------------------------------------------------------------------ *)
(* Extension substrates *)

let test_satellite_preset () =
  let p = Traces.Wan.satellite ~duration:5.0 () in
  check_bool "long rtt" true (p.Traces.Wan.rtt > 0.4);
  check_bool "lossy" true (p.Traces.Wan.loss_p >= 0.01)

let test_five_g_switches_regimes () =
  let p = Traces.Wan.five_g ~duration:30.0 () in
  let fn = Traces.Rate.fn p.Traces.Wan.rate in
  let fast = ref 0 and slow = ref 0 in
  for i = 0 to 299 do
    let mbps = Netsim.Units.bps_to_mbps (fn (0.1 *. float_of_int i)) in
    if mbps > 100.0 then incr fast else if mbps < 50.0 then incr slow
  done;
  check_bool "visits both regimes" true (!fast > 20 && !slow > 20)

let test_codel_keeps_capacity_bound () =
  let q = Netsim.Codel.create ~capacity:4500 () in
  check_bool "admit 3" true
    (Netsim.Codel.enqueue q { Netsim.Packet.flow = 0; seq = 0; size = 1500;
                              sent_at = 0.0; delivered_at_send = 0;
                              corrupt = false } ~now:0.0
    && Netsim.Codel.enqueue q { Netsim.Packet.flow = 0; seq = 1; size = 1500;
                                sent_at = 0.0; delivered_at_send = 0;
                              corrupt = false } ~now:0.0
    && Netsim.Codel.enqueue q { Netsim.Packet.flow = 0; seq = 2; size = 1500;
                                sent_at = 0.0; delivered_at_send = 0;
                              corrupt = false } ~now:0.0);
  check_bool "tail drop at capacity" true
    (not (Netsim.Codel.enqueue q { Netsim.Packet.flow = 0; seq = 3; size = 1500;
                                   sent_at = 0.0; delivered_at_send = 0;
                              corrupt = false } ~now:0.0))

(* ------------------------------------------------------------------ *)
(* Libra over other classics builds and runs *)

let test_w_libra_runs () =
  let inst =
    Libra.make_instrumented ~name:"w-libra"
      ~classic:(Some (Classic_cc.Westwood.embedded ())) ()
  in
  let link =
    { Netsim.Network.rate_fn = (fun _ -> Netsim.Units.mbps_to_bps 24.0); const_rate = None;
      grain = 0.02; buffer_bytes = Netsim.Units.kb 150; loss_p = 0.0; aqm = `Fifo }
  in
  let flows = [ { Netsim.Network.cca = inst.Libra.cca; start_at = 0.0; stop_at = 10.0; rtt = 0.03 } ] in
  let s = Netsim.Network.run ~link ~flows ~duration:10.0 () in
  check_bool "w-libra utilises" true (Netsim.Network.utilization s > 0.6);
  check_bool "w-libra decided" true
    (Libra.Telemetry.total (Libra.Controller.telemetry inst.Libra.controller) > 5)

let () =
  Alcotest.run "more"
    [
      ( "rtt_tracker",
        [
          Alcotest.test_case "ewma+min" `Quick test_rtt_tracker_ewma_and_min;
          Alcotest.test_case "defaults" `Quick test_rtt_tracker_defaults_before_samples;
        ] );
      ( "flow",
        [
          Alcotest.test_case "rto on dead link" `Quick test_flow_rto_fires_on_dead_link;
          Alcotest.test_case "cwnd limits inflight" `Quick test_flow_cwnd_limits_inflight;
          Alcotest.test_case "loss accounting" `Quick test_flow_stats_loss_accounting;
        ] );
      ( "features",
        [
          Alcotest.test_case "values" `Quick test_feature_values;
          Alcotest.test_case "clamps" `Quick test_feature_clamps;
          Alcotest.test_case "names" `Quick test_all_candidates_have_names;
          Alcotest.test_case "aiad step" `Quick test_aiad_step_is_packets_per_rtt;
        ] );
      ("vivace", [ Alcotest.test_case "bounded steps" `Quick test_vivace_clamp_step ]);
      ( "telemetry",
        [ Alcotest.test_case "utility series" `Quick test_telemetry_utility_series_follows_choice ] );
      ("ideal", [ Alcotest.test_case "grid from stats" `Quick test_ideal_utility_of_stats_grid ]);
      ( "extensions",
        [
          Alcotest.test_case "satellite" `Quick test_satellite_preset;
          Alcotest.test_case "5g regimes" `Quick test_five_g_switches_regimes;
          Alcotest.test_case "codel capacity" `Quick test_codel_keeps_capacity_bound;
          Alcotest.test_case "w-libra runs" `Slow test_w_libra_runs;
        ] );
    ]
