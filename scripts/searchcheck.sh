#!/bin/sh
# Searchcheck: adversarial-search smoke for lib/search (tier-1;
# `make search`).
#
#   searchcheck.sh LIBRA_SEARCH_EXE EXPERIMENTS_EXE [WORKDIR]
#
# Three assertions:
#   1. The --mini search (2 generations over CUBIC with a planted
#      bernoulli:p=0.3 counterexample) rediscovers a spec degrading
#      utility >= 25% vs the clean baseline and exits 0.
#   2. The run is byte-identical at --domains 1 vs --domains 4 — both
#      the leaderboard stdout and the shrunk .scn file written by
#      --out (per-candidate split_key streams + order-preserving pool).
#   3. The committed scenarios/ corpus replays as named regression rows
#      in the robustness matrix, and the shipped counterexamples still
#      cross their recorded thresholds.
set -eu

SEARCH="$1"
EXPS="$2"
WORK="${3:-$(mktemp -d "${TMPDIR:-/tmp}/libra-searchcheck.XXXXXX")}"
mkdir -p "$WORK"

fail() {
  echo "searchcheck: $1" >&2
  exit 1
}

# 1. Mini search at pool size 1 and pool size 4.
status=0
"$SEARCH" --mini --seed 5 --domains 1 --out "$WORK/scn1" \
  >"$WORK/p1.out" 2>"$WORK/p1.err" || status=$?
[ "$status" -eq 0 ] || fail "mini search (--domains 1) exited $status"
status=0
"$SEARCH" --mini --seed 5 --domains 4 --out "$WORK/scn4" \
  >"$WORK/p4.out" 2>"$WORK/p4.err" || status=$?
[ "$status" -eq 0 ] || fail "mini search (--domains 4) exited $status"

grep -q "^FOUND cubic" "$WORK/p1.out" \
  || fail "mini search did not rediscover the planted CUBIC counterexample"

# 2. Byte-identical across pool sizes (normalise the --out paths, which
# necessarily differ between the two runs).
sed "s#$WORK/scn1#OUT#" <"$WORK/p1.out" >"$WORK/p1.norm"
sed "s#$WORK/scn4#OUT#" <"$WORK/p4.out" >"$WORK/p4.norm"
if ! cmp -s "$WORK/p1.norm" "$WORK/p4.norm"; then
  diff "$WORK/p1.norm" "$WORK/p4.norm" >&2 || true
  fail "leaderboard differs between --domains 1 and --domains 4"
fi
[ -f "$WORK/scn1/cubic-worst.scn" ] || fail "--out wrote no cubic-worst.scn"
if ! cmp -s "$WORK/scn1/cubic-worst.scn" "$WORK/scn4/cubic-worst.scn"; then
  diff "$WORK/scn1/cubic-worst.scn" "$WORK/scn4/cubic-worst.scn" >&2 || true
  fail "written .scn differs between --domains 1 and --domains 4"
fi

# 3. The committed corpus replays in the robustness matrix.
"$EXPS" --tiny robust >"$WORK/robust.out" 2>"$WORK/robust.err" \
  || fail "robustness replay run failed (exit $?)"
grep -q "adversarial regressions" "$WORK/robust.out" \
  || fail "robustness matrix did not render the regression table"
grep -q "cubic-worst" "$WORK/robust.out" \
  || fail "committed cubic-worst.scn missing from the regression table"
if grep "worst" "$WORK/robust.out" | grep -q "stale"; then
  grep "worst" "$WORK/robust.out" >&2
  fail "a committed counterexample replayed below its threshold"
fi

echo "searchcheck: ok (mini search found+shrunk, pool 1 vs 4 byte-identical, corpus replayed)"
