#!/bin/sh
# Chaoscheck: deterministic host-fault matrix for the harness
# persistence plane and the self-healing domain pool (tier-1;
# `make chaos`).
#
#   chaoscheck.sh EXPERIMENTS_EXE [WORKDIR]
#
# Every leg asserts the three chaos-layer contracts:
#   (a) no injected fault escapes as an unstructured crash — every exit
#       code is the documented one (0 ok, 6 host fault), and stdout
#       stays byte-identical to the clean reference (recovery is
#       transparent; fault evidence lives on stderr),
#   (b) a --resume after an interrupted or corrupted run converges to
#       the clean run byte-for-byte,
#   (c) the failure reports and exit codes name the injected fault
#       class (torn / flip->corrupt / enospc / eio / kill-domain).
set -eu

EXE="$1"
WORK="${2:-$(mktemp -d "${TMPDIR:-/tmp}/libra-chaoscheck.XXXXXX")}"
mkdir -p "$WORK"

# Same subset as faultcheck: robust-mini pins its own duration, fig17
# covers the learned-CCA path; together they fan out enough pool tasks
# for the kill-domain legs to bite.
IDS="robust-mini fig17"

fail() {
  echo "chaoscheck: $1" >&2
  exit 1
}

run() { # run NAME EXPECTED_EXIT args...
  name="$1" want="$2"
  shift 2
  status=0
  "$EXE" --tiny $IDS "$@" >"$WORK/$name.out" 2>"$WORK/$name.err" || status=$?
  [ "$status" -eq "$want" ] \
    || fail "$name exited $status, want $want (stderr: $(tail -2 "$WORK/$name.err" | tr '\n' ' '))"
}

same_stdout() { # same_stdout NAME REF
  if ! cmp -s "$WORK/$2.out" "$WORK/$1.out"; then
    diff "$WORK/$2.out" "$WORK/$1.out" >&2 || true
    fail "$1 stdout differs from $2 (recovery must be transparent)"
  fi
}

# ---- clean references (and the pool-size determinism baseline) ----
run clean1 0 --domains 1
run clean4 0 --domains 4
same_stdout clean4 clean1

# ---- torn: crash mid-write leaves an orphan tmp; sweep + re-save ----
CK="$WORK/ck-torn"
run torn 6 --domains 1 --checkpoint "$CK" --chaos torn:p=1
same_stdout torn clean1
grep -q "CHECKPOINT FAULT.*torn" "$WORK/torn.err" \
  || fail "torn run did not name the torn fault"
ls "$CK"/*.tmp >/dev/null 2>&1 \
  || fail "torn write left no orphaned tmp file"
run torn_resume 0 --domains 1 --checkpoint "$CK" --resume
same_stdout torn_resume clean1
grep -q "swept" "$WORK/torn_resume.err" \
  || fail "resume did not sweep the orphaned tmp file"
if ls "$CK"/*.tmp >/dev/null 2>&1; then
  fail "orphaned tmp files survived the startup sweep"
fi

# ---- flip: silent corruption; verify-on-read catches it on resume ----
CK="$WORK/ck-flip"
run flip 0 --domains 1 --checkpoint "$CK" --chaos flip:p=1
same_stdout flip clean1
run flip_resume1 6 --domains 1 --checkpoint "$CK" --resume
same_stdout flip_resume1 clean1
grep -q "CORRUPT" "$WORK/flip_resume1.err" \
  || fail "flipped cell was not reported as corrupt"
grep -q "corrupt" "$WORK/flip_resume1.err" \
  || fail "corrupt report does not name the fault kind"
ls "$CK"/*.corrupt >/dev/null 2>&1 \
  || fail "corrupt cell was not quarantined"
run flip_resume2 0 --domains 1 --checkpoint "$CK" --resume
same_stdout flip_resume2 clean1
grep -q "2 resumed" "$WORK/flip_resume2.err" \
  || fail "re-executed cells did not resume cleanly after quarantine"

# ---- enospc: disk full; saves fail structurally, results intact ----
CK="$WORK/ck-enospc"
run enospc 6 --domains 1 --checkpoint "$CK" --chaos enospc:after=0
same_stdout enospc clean1
grep -q "enospc" "$WORK/enospc.err" \
  || fail "enospc run did not name the fault"
run enospc_resume 0 --domains 1 --checkpoint "$CK" --resume
same_stdout enospc_resume clean1

# ---- eio: I/O errors on the store; saves fail structurally ----
CK="$WORK/ck-eio"
run eio 6 --domains 1 --checkpoint "$CK" --chaos eio:p=1
same_stdout eio clean1
grep -q "eio" "$WORK/eio.err" \
  || fail "eio run did not name the fault"
run eio_resume 0 --domains 1 --checkpoint "$CK" --resume
same_stdout eio_resume clean1

# ---- truncation: a cell cut short by the host is detected, named
#      with its byte position, quarantined, and re-executed ----
CK="$WORK/ck-trunc"
run trunc_seed 0 --domains 1 --checkpoint "$CK"
cell=$(ls "$CK"/*.ckpt | head -1)
head -c 40 "$cell" >"$cell.cut" && mv "$cell.cut" "$cell"
run trunc_resume 6 --domains 1 --checkpoint "$CK" --resume
same_stdout trunc_resume clean1
grep -q "CORRUPT" "$WORK/trunc_resume.err" \
  || fail "truncated cell was not reported as corrupt"
grep -q "at byte" "$WORK/trunc_resume.err" \
  || fail "corrupt report carries no byte position"
run trunc_resume2 0 --domains 1 --checkpoint "$CK" --resume
same_stdout trunc_resume2 clean1

# ---- kill-domain: tasks resurrect; reports byte-identical at any
#      pool size, and the injected schedule is size-independent ----
run kill1 0 --domains 1 --chaos kill-domain:p=0.7
same_stdout kill1 clean1
run kill4 0 --domains 4 --chaos kill-domain:p=0.7
same_stdout kill4 clean1
inj1=$(sed -n 's/^\[chaos\] \(injected: [^;]*\); .*/\1/p' "$WORK/kill1.err")
inj4=$(sed -n 's/^\[chaos\] \(injected: [^;]*\); .*/\1/p' "$WORK/kill4.err")
[ -n "$inj1" ] || fail "kill run at --domains 1 printed no chaos summary"
[ "$inj1" = "$inj4" ] \
  || fail "kill schedule differs across pool sizes ($inj1 vs $inj4)"
case "$inj1" in
*kill=0*) fail "kill-domain:p=0.7 injected no kills" ;;
esac
grep -q "resurrected=" "$WORK/kill4.err" \
  || fail "kill run reported no resurrections"

echo "chaoscheck: ok (torn swept+resumed, flip detected+quarantined," \
  "enospc/eio structured, truncation positioned, kills healed" \
  "size-independently; every recovery byte-identical to clean)"
