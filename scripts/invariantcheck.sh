#!/bin/sh
# Invariantcheck: online invariant-checker and divergence-bisector smoke
# (tier-1; `make invariants`).
#
#   invariantcheck.sh EXPERIMENTS_EXE LIBRA_SIM_EXE DIVERGE_EXE [WORKDIR]
#
# Six probes:
#   1. experiments robust-mini with the default invariant pack must come
#      back clean (exit 0, zero violations in the lane summary)
#   2. a deliberately violated spec must fail the run through the
#      supervisor (exit 3) with a structured report naming the predicate
#      and the offending event index
#   3. libra_sim with the default pack must be clean (exit 0); the same
#      violated spec must exit 5 with the checker report
#   4. diverge must certify pool 1 vs pool 4 byte-identical on a wired
#      and an LTE trace (exit 0)
#   5. diverge with an injected single-event perturbation must pinpoint
#      exactly that event (exit 1, "DIVERGED at event N")
#   6. --trace-filter invariant must be accepted by the CLI
set -eu

EXPERIMENTS="$1"
SIM="$2"
DIVERGE="$3"
WORK="${4:-$(mktemp -d "${TMPDIR:-/tmp}/libra-invariantcheck.XXXXXX")}"
mkdir -p "$WORK"

BAD='bad: always ev=ack & rtt<0'

fail() {
  echo "invariantcheck: $1" >&2
  exit 1
}

# 1. Default pack clean through the experiment harness.
"$EXPERIMENTS" --tiny robust-mini --invariant default \
  >"$WORK/clean.out" 2>"$WORK/clean.err" \
  || fail "clean robust-mini run failed (exit $?)"
grep -q "\[invariants\]" "$WORK/clean.err" \
  || fail "clean run missing the [invariants] lane summary"
grep -q "0 violation(s)" "$WORK/clean.err" \
  || fail "default pack not clean on robust-mini"

# 2. A violated spec fails the run through the supervisor.
status=0
"$EXPERIMENTS" --tiny robust-mini --invariant "$BAD" \
  >"$WORK/bad.out" 2>"$WORK/bad.err" || status=$?
[ "$status" -eq 3 ] || fail "violated run exited $status, want 3"
grep -q "invariant violated: bad" "$WORK/bad.out" \
  || fail "violated run missing the structured supervisor report"
grep -q "at event index" "$WORK/bad.out" \
  || fail "supervisor report does not name the offending event index"

# 3. The same pair through libra_sim (exit 0 clean, exit 5 violated).
"$SIM" --cca cubic --trace wired:24 --duration 2 --invariant default \
  >"$WORK/sim.out" 2>"$WORK/sim.err" \
  || fail "libra_sim default-pack run failed (exit $?)"
grep -q "spec(s) clean" "$WORK/sim.err" \
  || fail "libra_sim clean run missing the checker summary"
status=0
"$SIM" --cca cubic --trace wired:24 --duration 2 --invariant "$BAD" \
  >"$WORK/simbad.out" 2>"$WORK/simbad.err" || status=$?
[ "$status" -eq 5 ] || fail "libra_sim violated run exited $status, want 5"
grep -q "violation(s)" "$WORK/simbad.err" \
  || fail "libra_sim violated run missing the checker report"

# 4. Pool 1 vs pool 4 byte-identical on wired and LTE.
"$DIVERGE" --trace wired:24 --duration 2 >"$WORK/div-wired.out" 2>&1 \
  || fail "diverge found wired pool 1 vs 4 non-identical (exit $?)"
grep -q "byte-identical" "$WORK/div-wired.out" \
  || fail "wired diverge report missing byte-identical verdict"
"$DIVERGE" --trace lte:walking --duration 2 >"$WORK/div-lte.out" 2>&1 \
  || fail "diverge found LTE pool 1 vs 4 non-identical (exit $?)"
grep -q "byte-identical" "$WORK/div-lte.out" \
  || fail "LTE diverge report missing byte-identical verdict"

# 5. An injected single-event perturbation is pinpointed exactly.
status=0
"$DIVERGE" --trace wired:24 --duration 2 -b perturb=25 \
  >"$WORK/div-perturb.out" 2>&1 || status=$?
[ "$status" -eq 1 ] || fail "perturbed diverge exited $status, want 1"
grep -q "DIVERGED at event 25 " "$WORK/div-perturb.out" \
  || fail "bisector did not pinpoint the perturbed event 25"

# 6. The invariant category is a valid trace filter.
"$SIM" --cca cubic --trace wired:24 --duration 1 --invariant default \
  --trace-out "$WORK/inv.jsonl" --trace-filter invariant \
  >"$WORK/filter.out" 2>"$WORK/filter.err" \
  || fail "--trace-filter invariant rejected (exit $?)"

echo "invariantcheck: ok (pack clean, violations fail structurally, pool 1 vs 4 byte-identical, bisector exact)"
