#!/bin/sh
# Faultcheck: crash-isolation and checkpoint/resume smoke for the
# supervised experiment harness (tier-1; `make faultcheck`).
#
#   faultcheck.sh EXPERIMENTS_EXE [WORKDIR]
#
# Three runs of the same tiny-scale experiment subset:
#   1. clean          — the byte-for-byte reference output
#   2. --inject-crash — an always-raising fixture entry must fail the
#                       run (exit 3) and render a structured failure
#                       report, while every real experiment's bytes
#                       stay identical to the clean run
#   3. --resume       — completed cells are served from the checkpoint
#                       store written by run 2, byte-identical, and
#                       nothing re-executes
set -eu

EXE="$1"
WORK="${2:-$(mktemp -d "${TMPDIR:-/tmp}/libra-faultcheck.XXXXXX")}"
CK="$WORK/ckpt"
mkdir -p "$WORK"

# robust-mini pins its own duration and fig17 is among the fastest
# figure groups at --tiny scale; together they cover the pool fan-out
# and the learned-CCA pretraining path.
IDS="robust-mini fig17"

fail() {
  echo "faultcheck: $1" >&2
  exit 1
}

# 1. Clean reference run.
"$EXE" --tiny $IDS >"$WORK/clean.out" 2>"$WORK/clean.err" \
  || fail "clean run failed (exit $?)"

# 2. Crash run.
status=0
"$EXE" --tiny --checkpoint "$CK" --inject-crash $IDS \
  >"$WORK/crash.out" 2>"$WORK/crash.err" || status=$?
[ "$status" -eq 3 ] || fail "crash run exited $status, want 3"
n=$(wc -l <"$WORK/clean.out")
head -n "$n" "$WORK/crash.out" >"$WORK/crash.head"
if ! cmp -s "$WORK/clean.out" "$WORK/crash.head"; then
  diff "$WORK/clean.out" "$WORK/crash.head" >&2 || true
  fail "sibling reports differ from the clean run"
fi
grep -q "FAILED fixture-crash" "$WORK/crash.out" \
  || fail "crash run did not render the fixture failure report"
grep -q "1 failed" "$WORK/crash.err" \
  || fail "crash run summary missing the failure count"

# 3. Resume run.
"$EXE" --tiny --checkpoint "$CK" --resume $IDS \
  >"$WORK/resume.out" 2>"$WORK/resume.err" \
  || fail "resume run failed (exit $?)"
if ! cmp -s "$WORK/clean.out" "$WORK/resume.out"; then
  diff "$WORK/clean.out" "$WORK/resume.out" >&2 || true
  fail "resumed reports differ from the clean run"
fi
grep -q "2 resumed" "$WORK/resume.err" \
  || fail "resume run did not skip the completed cells"

echo "faultcheck: ok (crash isolated, siblings byte-identical, resume skipped 2 cells)"
