#!/bin/sh
# Observecheck: scale-ready observability smoke (tier-1; `make observe`).
#
#   observecheck.sh EXPERIMENTS_EXE TRACE_CHECK_EXE TRACE_VIEW_EXE [WORKDIR]
#
# Five probes:
#   1. population-mini with head-based sampling (--trace-sample 1/4)
#      and windowed rollups must export byte-identically at --domains 1
#      vs --domains 4 (the rollup CSV compared whole; the trace JSONL
#      compared with its manifest header stripped — the header records
#      argv, which legitimately differs between the two runs)
#   2. the sampled trace must validate under trace_check, and the
#      rollup must be smaller than the sampled trace it summarizes
#   3. a deliberately violated invariant must leave a flight-recorder
#      dump in --flight-dir and name it in the failure report
#   4. the flight dump itself must be a valid trace (trace_check on a
#      manifest-less JSONL)
#   5. trace_view must convert both the trace export and the flight
#      dump to Chrome trace-event JSON that passes its own re-parse
#      ("(valid JSON)")
set -eu

EXPERIMENTS="$1"
TRACE_CHECK="$2"
TRACE_VIEW="$3"
WORK="${4:-$(mktemp -d "${TMPDIR:-/tmp}/libra-observecheck.XXXXXX")}"
mkdir -p "$WORK" "$WORK/flight"

BAD='bad: always ev=ack & rtt<0'

fail() {
  echo "observecheck: $1" >&2
  exit 1
}

# 1. Sampling + rollups byte-identical at --domains 1 vs --domains 4.
for d in 1 4; do
  "$EXPERIMENTS" --tiny population-mini --domains "$d" \
    --trace-sample 1/4 --trace "$WORK/trace$d.jsonl" \
    --rollup-out "$WORK/rollup$d.csv" \
    >"$WORK/pop$d.out" 2>"$WORK/pop$d.err" \
    || fail "sampled population-mini at --domains $d failed (exit $?)"
done
cmp -s "$WORK/rollup1.csv" "$WORK/rollup4.csv" \
  || fail "rollup CSV differs between --domains 1 and 4"
grep -v '"manifest"' "$WORK/trace1.jsonl" >"$WORK/trace1.stripped"
grep -v '"manifest"' "$WORK/trace4.jsonl" >"$WORK/trace4.stripped"
cmp -s "$WORK/trace1.stripped" "$WORK/trace4.stripped" \
  || fail "sampled trace differs between --domains 1 and 4"

# 2. The sampled trace validates; the rollup is the smaller artifact.
"$TRACE_CHECK" --require-manifest "$WORK/trace1.jsonl" >"$WORK/tc.out" \
  || fail "trace_check rejected the sampled trace (exit $?)"
rollup_size=$(wc -c <"$WORK/rollup1.csv")
trace_size=$(wc -c <"$WORK/trace1.jsonl")
[ "$rollup_size" -gt 0 ] || fail "rollup CSV is empty"
[ "$rollup_size" -lt "$trace_size" ] \
  || fail "rollup ($rollup_size B) not smaller than the trace ($trace_size B)"

# 3. A violated invariant leaves a flight dump and reports its path.
status=0
"$EXPERIMENTS" --tiny robust-mini --invariant "$BAD" \
  --flight-dir "$WORK/flight" \
  >"$WORK/bad.out" 2>"$WORK/bad.err" || status=$?
[ "$status" -eq 3 ] || fail "violated run exited $status, want 3"
DUMP="$WORK/flight/flight-violation-bad.jsonl"
[ -s "$DUMP" ] || fail "no flight dump at $DUMP"
grep -q "flight:" "$WORK/bad.out" \
  || fail "failure report does not name the flight dump"

# 4. The flight dump is itself a valid (manifest-less) trace.
"$TRACE_CHECK" "$DUMP" >"$WORK/tc-flight.out" \
  || fail "trace_check rejected the flight dump (exit $?)"

# 5. trace_view converts both artifacts to valid Chrome trace JSON.
"$TRACE_VIEW" "$WORK/trace1.jsonl" -o "$WORK/trace1.trace.json" \
  >"$WORK/tv.out" || fail "trace_view failed on the trace export (exit $?)"
grep -q "(valid JSON)" "$WORK/tv.out" \
  || fail "trace_view did not self-validate the trace export conversion"
"$TRACE_VIEW" "$DUMP" -o "$WORK/flight.trace.json" >"$WORK/tv-flight.out" \
  || fail "trace_view failed on the flight dump (exit $?)"
grep -q "(valid JSON)" "$WORK/tv-flight.out" \
  || fail "trace_view did not self-validate the flight dump conversion"

echo "observecheck: ok (sampled trace + rollup byte-identical at --domains 1 vs 4, violation leaves a flight dump, timeline exports valid)"
